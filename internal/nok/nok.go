// Package nok implements the navigational tree-pattern matcher of the
// paper's Section 4: the physical τ (tree pattern matching) operator.
//
// A pattern graph is evaluated against the succinct store in two linear
// passes over the relevant subtrees — no structural joins:
//
//  1. an upward pass (post-order) computes, for every document node, the
//     set S(n) of pattern vertices whose *downward* sub-pattern matches at
//     n: the node passes the vertex's test and every pattern child is
//     satisfied in some document child (parent-child edges) or some
//     proper descendant (ancestor-descendant edges);
//  2. a downward pass (pre-order) intersects S with *upward* consistency:
//     a vertex binds at n only if its pattern parent binds at the right
//     ancestor. The pass prunes entire subtrees as soon as no vertex can
//     bind below.
//
// Next-of-kin (NoK) fragments — sub-patterns with only parent-child
// edges — are the case where pass 1 needs only a window of one
// parent-child hop of state, which is why the paper's storage scheme
// clusters by that relationship; fragments glue to the rest of the
// pattern through the descendant-edge machinery above.
//
// Vertex sets are bitmasks, so patterns are limited to 64 vertices
// (far above any realistic query; ErrTooLarge reports violations).
package nok

import (
	"errors"
	"sort"

	"xqp/internal/ast"
	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/tally"
	"xqp/internal/value"
	"xqp/internal/vocab"
	"xqp/internal/xmldoc"
)

// ErrTooLarge reports a pattern with more than 64 vertices.
var ErrTooLarge = errors.New("nok: pattern graph exceeds 64 vertices")

// Bindings maps pattern vertices to their matching document nodes, in
// document order.
type Bindings map[pattern.VertexID][]storage.NodeRef

// Match evaluates the pattern graph navigationally and returns the
// bindings of every pattern vertex. For rooted patterns pass the store
// root as the only context; for relative patterns pass the context nodes.
func Match(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef) (Bindings, error) {
	return MatchInterruptible(st, g, contexts, nil)
}

// MatchInterruptible is Match with a cancellation poll: interrupt (when
// non-nil) is consulted every pollEvery node visits, and its first
// non-nil error aborts the scan mid-pass and is returned.
func MatchInterruptible(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, interrupt func() error) (b Bindings, err error) {
	m, err := newMatcher(st, g)
	if err != nil {
		return nil, err
	}
	m.interrupt = interrupt
	defer catchInterrupt(&err)
	return m.run(contexts, nil), nil
}

// MatchOutput evaluates the pattern and returns only the output vertex's
// matches in document order — the common case for path expressions.
func MatchOutput(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef) ([]storage.NodeRef, error) {
	return MatchOutputInterruptible(st, g, contexts, nil)
}

// MatchOutputInterruptible is MatchOutput with a cancellation poll (see
// MatchInterruptible).
func MatchOutputInterruptible(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, interrupt func() error) ([]storage.NodeRef, error) {
	return MatchOutputCounted(st, g, contexts, interrupt, nil)
}

// MatchOutputCounted is MatchOutputInterruptible reporting the actual
// work into c (when non-nil): every document node visited by the
// matcher's passes counts toward c.NodesVisited.
func MatchOutputCounted(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, interrupt func() error, c *tally.Counters) (refs []storage.NodeRef, err error) {
	m, err := newMatcher(st, g)
	if err != nil {
		return nil, err
	}
	m.interrupt = interrupt
	if c != nil {
		defer func() { c.NodesVisited += m.visits }()
	}
	defer catchInterrupt(&err)
	want := []pattern.VertexID{g.Output}
	b := m.run(contexts, want)
	return b[g.Output], nil
}

// pollEvery is the number of node visits between interrupt polls: large
// enough to stay off the profile, small enough that a deadline stops a
// scan within microseconds.
const pollEvery = 256

// interruptPanic carries an interrupt error out of the matcher's
// recursions; catchInterrupt converts it back to an error return at the
// package boundary.
type interruptPanic struct{ err error }

func catchInterrupt(err *error) {
	if r := recover(); r != nil {
		ip, ok := r.(interruptPanic)
		if !ok {
			panic(r)
		}
		*err = ip.err
	}
}

// poll counts one node visit and checks the interrupt every pollEvery
// visits, aborting the matcher by panicking (recovered in the public
// entry points). The visit count doubles as the NodesVisited actual for
// execution traces.
func (m *matcher) poll() {
	m.visits++
	if m.interrupt == nil {
		return
	}
	if m.visits%pollEvery != 0 {
		return
	}
	if err := m.interrupt(); err != nil {
		panic(interruptPanic{err})
	}
}

// pollAux checks the interrupt from partitioning and bookkeeping loops
// (frontier selection, group sizing) on a separate cadence counter:
// that work is not pattern matching, so it must not inflate the
// NodesVisited actual that traces compare against serial runs.
func (m *matcher) pollAux() {
	if m.interrupt == nil {
		return
	}
	m.aux++
	if m.aux%pollEvery != 0 {
		return
	}
	if err := m.interrupt(); err != nil {
		panic(interruptPanic{err})
	}
}

// MatchNested evaluates the pattern and nests the output matches by their
// structural relationships, producing the NestedList that the logical τ
// operator returns (immediately-nested iff immediate ancestor-descendant
// among the matches).
func MatchNested(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef) (value.NestedList, error) {
	refs, err := MatchOutput(st, g, contexts)
	if err != nil {
		return value.NestedList{}, err
	}
	return NestRefs(st, refs), nil
}

// NestRefs nests document-ordered node refs by ancestorship.
func NestRefs(st *storage.Store, refs []storage.NodeRef) value.NestedList {
	var list value.NestedList
	type frame struct {
		n   *value.Nested
		end storage.NodeRef // exclusive subtree end
	}
	var stack []frame
	for _, r := range refs {
		nd := value.NewLeaf(value.Node{Store: st, Ref: r})
		for len(stack) > 0 && r >= stack[len(stack)-1].end {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			list.Roots = append(list.Roots, nd)
		} else {
			stack[len(stack)-1].n.Append(nd)
		}
		stack = append(stack, frame{n: nd, end: r + storage.NodeRef(st.SubtreeSize(r))})
	}
	return list
}

type matcher struct {
	st *storage.Store
	g  *pattern.Graph
	// Per vertex: bitmask of pattern children via child edges and via
	// descendant edges.
	childMask []uint64
	descMask  []uint64
	// tagSym caches the vocabulary symbol per vertex (None if the name
	// does not occur in the document: the vertex can never match).
	tagSym []vocab.Symbol
	absent []bool
	// smask holds S(n) for refs in the context window [base, base+len):
	// allocating only the window keeps τ cheap when the anchor is a
	// small subtree (e.g. a per-binding relative pattern).
	smask []uint64
	base  storage.NodeRef
	// interrupt (optional) aborts long scans; visits counts node visits
	// (poll cadence and the traces' NodesVisited actual).
	interrupt func() error
	visits    int64
	// aux is the pollAux cadence counter; kept separate from visits so
	// bookkeeping polls do not distort the NodesVisited tally.
	aux int64
	// floor holds per-vertex low-water marks into the top-down
	// accumulator: rollback never truncates below them. runTopDown sets
	// the marks at each context's start so a failing context cannot
	// erase bindings recorded by an earlier, overlapping context (nested
	// contexts interleave their recordings in the shared accumulator).
	floor []int
}

func (m *matcher) s(n storage.NodeRef) uint64       { return m.smask[n-m.base] }
func (m *matcher) setS(n storage.NodeRef, v uint64) { m.smask[n-m.base] = v }

func newMatcher(st *storage.Store, g *pattern.Graph) (*matcher, error) {
	n := g.VertexCount()
	if n > 64 {
		return nil, ErrTooLarge
	}
	m := &matcher{
		st:        st,
		g:         g,
		childMask: make([]uint64, n),
		descMask:  make([]uint64, n),
		tagSym:    make([]vocab.Symbol, n),
		absent:    make([]bool, n),
	}
	for v := 0; v < n; v++ {
		for _, e := range g.Children[v] {
			if e.Rel == pattern.RelChild {
				m.childMask[v] |= 1 << uint(e.To)
			} else {
				m.descMask[v] |= 1 << uint(e.To)
			}
		}
		vx := g.Vertices[v]
		if vx.Test.Kind == ast.TestName && vx.Test.Name != "*" {
			name := vx.Test.Name
			if vx.Attribute {
				name = "@" + name
			}
			m.tagSym[v] = st.Vocab.Lookup(name)
			m.absent[v] = m.tagSym[v] == vocab.None
		} else {
			m.tagSym[v] = vocab.None
		}
	}
	return m, nil
}

// test reports whether node n passes vertex v's node test and value
// predicates, comparing interned tag symbols on the fast path.
func (m *matcher) test(n storage.NodeRef, v int) bool {
	vx := &m.g.Vertices[v]
	if m.tagSym[v] == vocab.None {
		return pattern.MatchesVertex(m.st, n, vx)
	}
	if m.st.Tag(n) != m.tagSym[v] {
		return false
	}
	kind := m.st.Kind(n)
	if vx.Attribute {
		if kind != xmldoc.KindAttribute {
			return false
		}
	} else if kind != xmldoc.KindElement {
		return false
	}
	for _, p := range vx.Preds {
		if !p.Matches(m.st.StringValue(n)) {
			return false
		}
	}
	return true
}

// computeS runs the upward pass on the subtree of n. It returns S(n) and
// the union of S over n's proper descendants.
func (m *matcher) computeS(n storage.NodeRef) (s, below uint64) {
	m.poll()
	var cover, deep uint64
	for c := m.st.FirstChild(n); c != storage.NilRef; c = m.st.NextSibling(c) {
		cs, cb := m.computeS(c)
		cover |= cs
		deep |= cs | cb
	}
	s = m.vertexSet(n, cover, deep)
	m.setS(n, s)
	return s, deep
}

// vertexSet computes S(n) from the child cover and proper-descendant
// union: the per-node test step of the upward pass, shared by the
// recursive computeS and the parallel matcher's spine stitching.
func (m *matcher) vertexSet(n storage.NodeRef, cover, deep uint64) (s uint64) {
	for v := range m.g.Vertices {
		if m.absent[v] {
			continue
		}
		need := m.childMask[v]
		if need&cover != need {
			continue
		}
		needD := m.descMask[v]
		if needD&deep != needD {
			continue
		}
		if m.test(n, v) {
			s |= 1 << uint(v)
		}
	}
	return s
}

// anchorS computes S for the subtree of a context node and reports
// whether the anchor (vertex 0) matches there. Vertex 0 always carries a
// node() test, so its S bit holds exactly when the downward constraints
// are satisfied at the context.
func (m *matcher) anchorS(n storage.NodeRef) bool {
	s, _ := m.computeS(n)
	return s&1 != 0
}

// childOnly reports whether the pattern has no descendant edges (a single
// NoK fragment): such patterns evaluate top-down, touching only the
// document paths that match, without the global S pass.
func (m *matcher) childOnly() bool {
	for _, dm := range m.descMask {
		if dm != 0 {
			return false
		}
	}
	return true
}

// runTopDown evaluates a child-only pattern by navigation from the
// context nodes: the single-scan NoK fragment evaluation of Section 4.2.
// Bindings are recorded tentatively and rolled back when a sibling
// constraint of an ancestor fails.
func (m *matcher) runTopDown(contexts []storage.NodeRef, acc [][]storage.NodeRef) {
	for _, absent := range m.absent {
		if absent {
			// Some vertex's tag does not occur in this document: the
			// pattern cannot match anywhere.
			return
		}
	}
	if m.floor == nil {
		m.floor = make([]int, m.g.VertexCount())
	}
	for _, ctx := range contexts {
		// Mark the accumulator's high water before this context: a
		// failing constraint rolls back only this context's recordings,
		// never an earlier context's (their subtrees may overlap).
		for v := range m.floor {
			m.floor[v] = len(acc[v])
		}
		// The anchor matches the context node itself; check its pattern
		// children below the context.
		ok := true
		for _, e := range m.g.Children[0] {
			found := false
			for c := m.st.FirstChild(ctx); c != storage.NilRef; c = m.st.NextSibling(c) {
				if m.topDown(c, e.To, acc) {
					found = true
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			acc[0] = append(acc[0], ctx)
		} else {
			m.rollback(acc, 0, ctx)
		}
	}
}

// topDown evaluates the child-only pattern's vertex v at node n,
// recording tentative bindings into acc and rolling back the subtree's
// recordings when an ancestor constraint fails. It is the recursive
// step of runTopDown, factored as a method so the parallel matcher can
// evaluate disjoint chunks of a context's children independently.
func (m *matcher) topDown(n storage.NodeRef, v pattern.VertexID, acc [][]storage.NodeRef) bool {
	m.poll()
	if !m.test(n, int(v)) {
		return false
	}
	kids := m.g.Children[v]
	ok := true
	for _, e := range kids {
		found := false
		for c := m.st.FirstChild(n); c != storage.NilRef; c = m.st.NextSibling(c) {
			if m.topDown(c, e.To, acc) {
				found = true
			}
		}
		if !found {
			ok = false
			break
		}
	}
	if ok {
		acc[v] = append(acc[v], n)
		return true
	}
	// Roll back any bindings recorded below this failed node.
	m.rollback(acc, v, n)
	return false
}

// rollback removes bindings of v's pattern descendants that lie inside
// n's subtree (they were recorded before an ancestor constraint failed).
// It stops at the current context's floor: bindings recorded by earlier
// contexts survive even when they fall inside n's subtree.
func (m *matcher) rollback(acc [][]storage.NodeRef, v pattern.VertexID, n storage.NodeRef) {
	end := n + storage.NodeRef(m.st.SubtreeSize(n))
	var clear func(v pattern.VertexID)
	clear = func(v pattern.VertexID) {
		refs := acc[v]
		fl := 0
		if m.floor != nil {
			fl = m.floor[int(v)]
		}
		for len(refs) > fl && refs[len(refs)-1] >= n && refs[len(refs)-1] < end {
			refs = refs[:len(refs)-1]
		}
		acc[v] = refs
		for _, e := range m.g.Children[v] {
			clear(e.To)
		}
	}
	for _, e := range m.g.Children[v] {
		clear(e.To)
	}
}

// run evaluates the pattern for the given context nodes. If want is nil,
// bindings for all vertices are returned; otherwise only the listed ones.
func (m *matcher) run(contexts []storage.NodeRef, want []pattern.VertexID) Bindings {
	wantMask := uint64(0)
	if want == nil {
		wantMask = ^uint64(0)
	} else {
		for _, v := range want {
			wantMask |= 1 << uint(v)
		}
	}
	// Each context pass visits a node at most once, so duplicates can
	// only arise across overlapping contexts; collect into flat slices
	// and sort+dedup at the end instead of paying per-node map costs.
	acc := make([][]storage.NodeRef, m.g.VertexCount())
	if m.childOnly() {
		// Single NoK fragment: top-down navigation over matching paths
		// only, no global passes.
		m.runTopDown(contexts, acc)
		return m.finish(acc, wantMask)
	}
	// Size the S window to the context subtrees.
	m.sizeWindow(contexts)
	for _, ctx := range contexts {
		if !m.anchorS(ctx) {
			continue
		}
		if wantMask&1 != 0 {
			acc[0] = append(acc[0], ctx) // the anchor binds at the context node itself
		}
		for c := m.st.FirstChild(ctx); c != storage.NilRef; c = m.st.NextSibling(c) {
			m.down(c, m.childMask[0], m.descMask[0], wantMask, acc, nil)
		}
	}
	return m.finish(acc, wantMask)
}

// sizeWindow allocates the S window covering the context subtrees.
func (m *matcher) sizeWindow(contexts []storage.NodeRef) {
	if len(contexts) == 0 {
		return
	}
	lo, hi := contexts[0], contexts[0]
	for _, c := range contexts {
		if c < lo {
			lo = c
		}
		if end := c + storage.NodeRef(m.st.SubtreeSize(c)); end > hi {
			hi = end
		}
	}
	m.base = lo
	m.smask = make([]uint64, hi-lo)
}

// down is the downward pre-order pass of run, factored as a method so
// the parallel matcher can resume it per partition. cut, when non-nil,
// intercepts recursion into a child c with the masks it would receive;
// returning true claims the subtree (the parallel matcher enqueues it
// as a partition task instead of descending).
func (m *matcher) down(n storage.NodeRef, allowedChild, allowedDesc, wantMask uint64, acc [][]storage.NodeRef, cut func(c storage.NodeRef, ac, ad uint64) bool) {
	m.poll()
	bound := m.s(n) & (allowedChild | allowedDesc)
	if bound&wantMask != 0 {
		for v := 0; v < m.g.VertexCount(); v++ {
			if bound&wantMask&(1<<uint(v)) != 0 {
				acc[v] = append(acc[v], n)
			}
		}
	}
	var nextChild uint64
	nextDesc := allowedDesc
	for v := 0; v < m.g.VertexCount(); v++ {
		if bound&(1<<uint(v)) != 0 {
			nextChild |= m.childMask[v]
			nextDesc |= m.descMask[v]
		}
	}
	if nextChild == 0 && nextDesc == 0 {
		return
	}
	for c := m.st.FirstChild(n); c != storage.NilRef; c = m.st.NextSibling(c) {
		if cut != nil && cut(c, nextChild, nextDesc) {
			continue
		}
		m.down(c, nextChild, nextDesc, wantMask, acc, cut)
	}
}

// finish sorts and dedups the per-vertex bindings (contexts may overlap
// or arrive unsorted) and filters to the wanted vertices.
func (m *matcher) finish(acc [][]storage.NodeRef, wantMask uint64) Bindings {
	out := Bindings{}
	for v, refs := range acc {
		if refs == nil || wantMask&(1<<uint(v)) == 0 {
			continue
		}
		if !sortedUnique(refs) {
			sortRefs(refs)
			refs = dedupRefs(refs)
		}
		out[pattern.VertexID(v)] = refs
	}
	return out
}

func sortedUnique(refs []storage.NodeRef) bool {
	for i := 1; i < len(refs); i++ {
		if refs[i-1] >= refs[i] {
			return false
		}
	}
	return true
}

func dedupRefs(refs []storage.NodeRef) []storage.NodeRef {
	out := refs[:0]
	for i, r := range refs {
		if i == 0 || r != refs[i-1] {
			out = append(out, r)
		}
	}
	return out
}

func sortRefs(refs []storage.NodeRef) {
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
}
