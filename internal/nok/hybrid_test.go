package nok

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xqp/internal/naive"
	"xqp/internal/storage"
)

func TestHybridBasics(t *testing.T) {
	st := storage.MustLoad(bibXML)
	root := []storage.NodeRef{st.Root()}
	cases := []struct {
		q    string
		want int
	}{
		{"//title", 3},
		{"//book//last", 3},
		{"/bib//author/last", 4},
		{"//book[author]//last", 3},
		{"/bib/book", 2}, // single fragment degenerates to NoK
		{"//a//b//c", 0}, // nothing matches
		{"//book[.//last]/title", 2},
	}
	for _, c := range cases {
		g := graphOf(t, c.q)
		got, err := MatchHybrid(st, g, root)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if len(got) != c.want {
			t.Errorf("%s: %d matches, want %d", c.q, len(got), c.want)
		}
	}
}

func TestHybridOutputInMiddleFragment(t *testing.T) {
	st := storage.MustLoad(bibXML)
	// Output (book) sits in a middle fragment with a trailing descendant
	// existence constraint.
	g := graphOf(t, "//book[.//last]")
	got, err := MatchHybrid(st, g, []storage.NodeRef{st.Root()})
	if err != nil {
		t.Fatal(err)
	}
	want := naive.MatchOutput(st, g, []storage.NodeRef{st.Root()})
	if !refsEqual(got, want) {
		t.Fatalf("hybrid %v, naive %v", got, want)
	}
}

// Property: the hybrid strategy agrees with naive navigation and the
// single-pass NoK matcher on random documents.
func TestHybridAgreesProperty(t *testing.T) {
	queries := []string{
		"//b", "//a//b", "//a//b//c", "/a//c", "//a[b]//c",
		"//a[.//b]//c", "//*//b", "//a[b][.//c]", "//a//b[c]",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := storage.LoadString(randomXML(r, 70))
		if err != nil {
			return false
		}
		root := []storage.NodeRef{st.Root()}
		for _, q := range queries {
			g := graphOf(t, q)
			want := naive.MatchOutput(st, g, root)
			got, err := MatchHybrid(st, g, root)
			if err != nil {
				return false
			}
			if !refsEqual(got, want) {
				t.Logf("seed %d query %s: hybrid %v != naive %v", seed, q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHybrid(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	st := storage.MustLoad(randomXML(r, 5000))
	g := graphOf(b, "//a[b]//c")
	root := []storage.NodeRef{st.Root()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatchHybrid(st, g, root); err != nil {
			b.Fatal(err)
		}
	}
}
