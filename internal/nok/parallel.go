package nok

// Parallel intra-query tree-pattern matching: the τ operator evaluated
// over disjoint partitions of the balanced-parentheses store on a
// bounded goroutine pool.
//
// The store's pre-order numbering makes a subtree a contiguous ref
// range [n, n+SubtreeSize(n)), so disjoint subtrees partition both the
// document and the matcher's S-bitmask window without locks: workers
// share one smask array and write disjoint slices of it. Three
// partitioning modes cover the matcher's shapes:
//
//   - one context, descendant edges (global passes): a *frontier* of
//     subtree roots is carved out of the context's subtree by
//     repeatedly splitting the largest subtree into its children. The
//     upward pass runs per frontier subtree in parallel; the few nodes
//     above the frontier (the spine: the context plus every split
//     node) are stitched serially from the partition summaries; the
//     downward pass walks the spine serially and fans out again at the
//     frontier roots.
//   - one context, child-only pattern: the context's children are
//     chunked; each chunk navigates top-down independently, and the
//     per-edge "found" witnesses are combined across chunks before the
//     anchor is accepted.
//   - many contexts: the context list is chunked and each chunk runs
//     the full serial matcher. Contexts may be nested, so matches
//     reachable from two contexts can straddle a chunk boundary — the
//     merge must sort and deduplicate, never just concatenate.
//
// Partial results merge back into document order; per-partition spans
// are reported for execution traces.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/tally"
)

const (
	// partitionsPerWorker oversizes the partition count relative to the
	// worker pool so uneven subtrees still keep every worker busy.
	partitionsPerWorker = 4
	// maxSplitRounds bounds the frontier refinement: degenerate chain
	// documents would otherwise move one node per round forever.
	maxSplitRounds = 64
	// maxFrontier bounds the frontier size against pathologically wide
	// nodes (a root with a million children).
	maxFrontier = 1 << 14
)

// ParallelResult describes how MatchOutputParallel executed.
type ParallelResult struct {
	// Workers is the goroutine bound the match ran under.
	Workers int
	// Partitions holds one record per partition task, in document order.
	// It is nil exactly when the match fell back to serial execution.
	Partitions []tally.Partition
	// Fallback is the reason the match ran serially; empty when the
	// parallel path executed.
	Fallback string
}

// Parallel reports whether the parallel path actually executed.
func (r ParallelResult) Parallel() bool { return r.Partitions != nil }

// MatchOutputParallel is MatchOutputCounted evaluated over partitions
// of the store on a pool of up to workers goroutines. interrupt (when
// non-nil) must be safe for concurrent use — every worker polls it,
// exactly like the engine's context-backed interrupts. Results are
// identical to the serial matcher: merged into document order with
// boundary duplicates removed. When no useful partitioning exists the
// match runs serially and the result records the reason.
func MatchOutputParallel(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, workers int, interrupt func() error, c *tally.Counters) (refs []storage.NodeRef, pr ParallelResult, err error) {
	m, err := newMatcher(st, g)
	if err != nil {
		return nil, ParallelResult{Workers: workers}, err
	}
	m.interrupt = interrupt
	if c != nil {
		defer func() { c.NodesVisited += m.visits }()
	}
	defer catchInterrupt(&err)
	if workers < 2 {
		refs, pr = m.serialOutput(contexts, workers, "workers < 2")
		return refs, pr, nil
	}
	if len(contexts) == 0 {
		return nil, ParallelResult{Workers: workers, Fallback: "no context nodes"}, nil
	}
	for _, absent := range m.absent {
		if absent {
			// Some vertex's tag does not occur in this document: the
			// pattern cannot match anywhere, no passes needed.
			return nil, ParallelResult{Workers: workers, Fallback: "pattern tag absent from document"}, nil
		}
	}
	if len(contexts) > 1 {
		return m.runContextChunks(contexts, workers)
	}
	if m.childOnly() {
		return m.runChildChunks(contexts[0], workers)
	}
	return m.runFrontier(contexts[0], workers)
}

// serialOutput runs the serial matcher and tags the result with the
// fallback reason.
func (m *matcher) serialOutput(contexts []storage.NodeRef, workers int, reason string) ([]storage.NodeRef, ParallelResult) {
	b := m.run(contexts, []pattern.VertexID{m.g.Output})
	return b[m.g.Output], ParallelResult{Workers: workers, Fallback: reason}
}

// runContextChunks evaluates a multi-context τ by chunking the context
// list: each chunk runs the full serial matcher on a worker. The merge
// sorts and deduplicates because nested contexts may land in different
// chunks yet produce the same matches (their subtrees overlap), so a
// plain concatenation would double-report boundary matches.
func (m *matcher) runContextChunks(contexts []storage.NodeRef, workers int) ([]storage.NodeRef, ParallelResult, error) {
	want := []pattern.VertexID{m.g.Output}
	nTasks := workers * partitionsPerWorker
	if nTasks > len(contexts) {
		nTasks = len(contexts)
	}
	bounds := chunkBounds(len(contexts), nTasks)
	type chunkRes struct {
		w    matcher
		refs []storage.NodeRef
		dur  time.Duration
	}
	res := make([]*chunkRes, nTasks)
	err := runTasks(workers, nTasks, func(i int) {
		t0 := time.Now()
		r := &chunkRes{w: *m}
		r.w.smask, r.w.base = nil, 0
		b := r.w.run(contexts[bounds[i]:bounds[i+1]], want)
		r.refs = b[m.g.Output]
		r.dur = time.Since(t0)
		res[i] = r
	})
	parts := make([]tally.Partition, 0, nTasks)
	var out []storage.NodeRef
	for i, r := range res {
		if r == nil {
			continue // task aborted by an interrupt
		}
		m.visits += r.w.visits
		chunk := contexts[bounds[i]:bounds[i+1]]
		parts = append(parts, tally.Partition{
			Root:    int64(chunk[0]),
			Kind:    "contexts",
			Nodes:   int64(len(chunk)),
			Matches: int64(len(r.refs)),
			Dur:     r.dur,
		})
		out = append(out, r.refs...)
	}
	if err != nil {
		return nil, ParallelResult{Workers: workers}, err
	}
	return mergeSorted(out), ParallelResult{Workers: workers, Partitions: parts}, nil
}

// runChildChunks evaluates a child-only pattern at a single context by
// chunking the context's children into contiguous groups of near-equal
// subtree size. Each group navigates top-down independently, recording
// which of the anchor's pattern edges it witnessed; the anchor matches
// only if every edge is witnessed by some group, so the combination
// step — not any single worker — decides whether the recorded bindings
// survive.
func (m *matcher) runChildChunks(ctx storage.NodeRef, workers int) ([]storage.NodeRef, ParallelResult, error) {
	edges := m.g.Children[0]
	var kids []storage.NodeRef
	for c := m.st.FirstChild(ctx); c != storage.NilRef; c = m.st.NextSibling(c) {
		m.pollAux()
		kids = append(kids, c)
	}
	if len(edges) == 0 || len(kids) < 2 {
		refs, pr := m.serialOutput([]storage.NodeRef{ctx}, workers, "single partition")
		return refs, pr, nil
	}
	groups := groupBySize(m.st, kids, workers*partitionsPerWorker)
	if len(groups) < 2 {
		refs, pr := m.serialOutput([]storage.NodeRef{ctx}, workers, "single partition")
		return refs, pr, nil
	}
	type childRes struct {
		w     matcher
		acc   [][]storage.NodeRef
		found []bool
		dur   time.Duration
	}
	res := make([]*childRes, len(groups))
	err := runTasks(workers, len(groups), func(i int) {
		t0 := time.Now()
		r := &childRes{
			w:     *m,
			acc:   make([][]storage.NodeRef, m.g.VertexCount()),
			found: make([]bool, len(edges)),
		}
		for _, kid := range kids[groups[i][0]:groups[i][1]] {
			for ei, e := range edges {
				if r.w.topDown(kid, e.To, r.acc) {
					r.found[ei] = true
				}
			}
		}
		r.dur = time.Since(t0)
		res[i] = r
	})
	if err != nil {
		for _, r := range res {
			if r != nil {
				m.visits += r.w.visits
			}
		}
		return nil, ParallelResult{Workers: workers}, err
	}
	allFound := true
	for ei := range edges {
		found := false
		for _, r := range res {
			found = found || r.found[ei]
		}
		if !found {
			allFound = false
			break
		}
	}
	var out []storage.NodeRef
	parts := make([]tally.Partition, len(groups))
	for i, r := range res {
		m.visits += r.w.visits
		var nodes int64
		for _, kid := range kids[groups[i][0]:groups[i][1]] {
			nodes += int64(m.st.SubtreeSize(kid))
		}
		matches := 0
		if allFound {
			matches = len(r.acc[m.g.Output])
			out = append(out, r.acc[m.g.Output]...)
		}
		parts[i] = tally.Partition{
			Root:    int64(kids[groups[i][0]]),
			Kind:    "children",
			Nodes:   nodes,
			Matches: int64(matches),
			Dur:     r.dur,
		}
	}
	if allFound && m.g.Output == 0 {
		out = append(out, ctx)
	}
	return mergeSorted(out), ParallelResult{Workers: workers, Partitions: parts}, nil
}

// downTask is a suspended downward-pass recursion at a frontier root:
// the masks are exactly what the serial pass would have recursed with.
type downTask struct {
	n      storage.NodeRef
	ac, ad uint64
}

// runFrontier evaluates a general (descendant-edge) pattern at a single
// context with frontier decomposition: parallel upward pass per frontier
// subtree, serial spine stitching, then a downward pass that runs
// serially over the spine and fans out again at the frontier roots.
func (m *matcher) runFrontier(ctx storage.NodeRef, workers int) ([]storage.NodeRef, ParallelResult, error) {
	target := workers * partitionsPerWorker
	frontier, spine := m.pickFrontier(ctx, target)
	if len(frontier) < 2 {
		refs, pr := m.serialOutput([]storage.NodeRef{ctx}, workers, "single partition")
		return refs, pr, nil
	}
	groups := groupBySize(m.st, frontier, target)
	if len(groups) < 2 {
		refs, pr := m.serialOutput([]storage.NodeRef{ctx}, workers, "single partition")
		return refs, pr, nil
	}
	// One S window covers the whole context subtree; frontier subtrees
	// are disjoint ref ranges, so workers write disjoint slices of it.
	m.base = ctx
	m.smask = make([]uint64, m.st.SubtreeSize(ctx))

	// Phase 1: upward pass per frontier subtree, in parallel. belows[i]
	// is the S-union over frontier[i]'s proper descendants, needed when
	// the spine is stitched.
	type taskState struct {
		w   matcher
		acc [][]storage.NodeRef
		dur time.Duration
	}
	states := make([]*taskState, len(groups))
	belows := make([]uint64, len(frontier))
	err := runTasks(workers, len(groups), func(i int) {
		t0 := time.Now()
		ts := &taskState{w: *m}
		for j := groups[i][0]; j < groups[i][1]; j++ {
			_, below := ts.w.computeS(frontier[j])
			belows[j] = below
		}
		ts.dur = time.Since(t0)
		states[i] = ts
	})
	if err != nil {
		for _, ts := range states {
			if ts != nil {
				m.visits += ts.w.visits
			}
		}
		return nil, ParallelResult{Workers: workers}, err
	}

	// Phase 2: stitch the spine serially. Every child of a spine node is
	// a spine node or a frontier root, so processing spine nodes in
	// descending pre-order (descendants first) has all child summaries
	// available.
	frontIdx := make(map[storage.NodeRef]int, len(frontier))
	for i, f := range frontier {
		frontIdx[f] = i
	}
	sort.Slice(spine, func(i, j int) bool { return spine[i] > spine[j] })
	spineBelow := make(map[storage.NodeRef]uint64, len(spine))
	for _, n := range spine {
		m.pollAux()
		var cover, deep uint64
		for c := m.st.FirstChild(n); c != storage.NilRef; c = m.st.NextSibling(c) {
			m.pollAux()
			cs := m.s(c)
			cb, ok := spineBelow[c]
			if !ok {
				cb = belows[frontIdx[c]]
			}
			cover |= cs
			deep |= cs | cb
		}
		m.setS(n, m.vertexSet(n, cover, deep))
		spineBelow[n] = deep
	}

	finishParts := func() []tally.Partition {
		parts := make([]tally.Partition, len(groups))
		for i, gr := range groups {
			ts := states[i]
			var nodes int64
			for j := gr[0]; j < gr[1]; j++ {
				nodes += int64(m.st.SubtreeSize(frontier[j]))
			}
			matches := 0
			if ts.acc != nil {
				matches = len(ts.acc[m.g.Output])
			}
			parts[i] = tally.Partition{
				Root:    int64(frontier[gr[0]]),
				Kind:    "subtree",
				Nodes:   nodes,
				Matches: int64(matches),
				Dur:     ts.dur,
			}
			m.visits += ts.w.visits
		}
		return parts
	}

	if m.s(ctx)&1 == 0 {
		// The anchor's downward constraints fail at the context: no
		// matches anywhere, skip the downward pass.
		return nil, ParallelResult{Workers: workers, Partitions: finishParts()}, nil
	}

	// Phase 3: downward pass. The spine walk runs serially, suspending
	// at frontier roots; the suspended recursions then run in parallel,
	// grouped exactly like phase 1.
	wantMask := uint64(1) << uint(m.g.Output)
	groupOf := make([]int, len(frontier))
	for gi, gr := range groups {
		for j := gr[0]; j < gr[1]; j++ {
			groupOf[j] = gi
		}
	}
	taskOf := make([][]downTask, len(groups))
	cut := func(c storage.NodeRef, ac, ad uint64) bool {
		fi, ok := frontIdx[c]
		if !ok {
			return false
		}
		taskOf[groupOf[fi]] = append(taskOf[groupOf[fi]], downTask{n: c, ac: ac, ad: ad})
		return true
	}
	topAcc := make([][]storage.NodeRef, m.g.VertexCount())
	if wantMask&1 != 0 {
		topAcc[0] = append(topAcc[0], ctx)
	}
	for c := m.st.FirstChild(ctx); c != storage.NilRef; c = m.st.NextSibling(c) {
		if cut(c, m.childMask[0], m.descMask[0]) {
			continue
		}
		m.down(c, m.childMask[0], m.descMask[0], wantMask, topAcc, cut)
	}
	err = runTasks(workers, len(groups), func(i int) {
		ts := states[i]
		t0 := time.Now()
		ts.acc = make([][]storage.NodeRef, m.g.VertexCount())
		for _, dt := range taskOf[i] {
			ts.w.down(dt.n, dt.ac, dt.ad, wantMask, ts.acc, nil)
		}
		ts.dur += time.Since(t0)
	})
	if err != nil {
		for _, ts := range states {
			if ts != nil {
				m.visits += ts.w.visits
			}
		}
		return nil, ParallelResult{Workers: workers}, err
	}
	out := append([]storage.NodeRef(nil), topAcc[m.g.Output]...)
	for _, ts := range states {
		out = append(out, ts.acc[m.g.Output]...)
	}
	return mergeSorted(out), ParallelResult{Workers: workers, Partitions: finishParts()}, nil
}

// pickFrontier selects disjoint subtree roots covering ctx's subtree
// minus a small residual spine: starting from ctx's children, the
// largest oversized subtree is repeatedly split into its children until
// every subtree is at most a fair share of the total or the refinement
// bounds hit. The returned frontier is in document order; spine holds
// ctx and every split node (exactly the nodes above the frontier).
func (m *matcher) pickFrontier(ctx storage.NodeRef, target int) (frontier, spine []storage.NodeRef) {
	spine = append(spine, ctx)
	for c := m.st.FirstChild(ctx); c != storage.NilRef; c = m.st.NextSibling(c) {
		m.pollAux()
		frontier = append(frontier, c)
	}
	fair := m.st.SubtreeSize(ctx)/target + 1
	for round := 0; round < maxSplitRounds && len(frontier) < maxFrontier; round++ {
		best, bestSize := -1, fair
		for i, f := range frontier {
			m.pollAux()
			if s := m.st.SubtreeSize(f); s > bestSize && m.st.FirstChild(f) != storage.NilRef {
				best, bestSize = i, s
			}
		}
		if best < 0 {
			break
		}
		split := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		spine = append(spine, split)
		for c := m.st.FirstChild(split); c != storage.NilRef; c = m.st.NextSibling(c) {
			m.pollAux()
			frontier = append(frontier, c)
		}
	}
	sortRefs(frontier)
	return frontier, spine
}

// groupBySize splits doc-ordered disjoint subtree roots into at most k
// contiguous groups of near-equal total subtree size.
func groupBySize(st *storage.Store, roots []storage.NodeRef, k int) [][2]int {
	var total int64
	for _, r := range roots {
		total += int64(st.SubtreeSize(r))
	}
	budget := total/int64(k) + 1
	var groups [][2]int
	start := 0
	var acc int64
	for i, r := range roots {
		acc += int64(st.SubtreeSize(r))
		if acc >= budget {
			groups = append(groups, [2]int{start, i + 1})
			start, acc = i+1, 0
		}
	}
	if start < len(roots) {
		groups = append(groups, [2]int{start, len(roots)})
	}
	return groups
}

// chunkBounds splits n items into k contiguous chunks of near-equal
// count, returning the k+1 boundary indices.
func chunkBounds(n, k int) []int {
	b := make([]int, k+1)
	for i := 0; i <= k; i++ {
		b[i] = i * n / k
	}
	return b
}

// mergeSorted restores document order over concatenated per-partition
// results. Partitions over disjoint subtrees concatenate cleanly, but
// nested contexts chunked onto different workers produce overlapping —
// even identical — matches, and post-order recordings arrive unsorted;
// both cases take the sort+dedup path.
func mergeSorted(refs []storage.NodeRef) []storage.NodeRef {
	if sortedUnique(refs) {
		return refs
	}
	sortRefs(refs)
	return dedupRefs(refs)
}

// runTasks executes n tasks on a bounded pool of up to workers
// goroutines, converting an interrupt raised inside any task back into
// its error. Tasks must index disjoint state; the pool join publishes
// their writes to the caller.
func runTasks(workers, n int, task func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var err error
		func() {
			defer catchInterrupt(&err)
			for i := 0; i < n; i++ {
				task(i)
			}
		}()
		return err
	}
	var next atomic.Int64
	next.Store(-1)
	var mu sync.Mutex
	var first error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				var err error
				func() {
					defer catchInterrupt(&err)
					task(i)
				}()
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
