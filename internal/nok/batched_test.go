package nok

import (
	"errors"
	"math/rand"
	"testing"

	"xqp/internal/storage"
	"xqp/internal/tally"
	"xqp/internal/xmark"
)

// batchedQueries spans the matcher's shapes: child-only fragments,
// descendant edges, branching, predicates, attributes, wildcards.
var batchedQueries = []string{
	"/bib/book",
	"/bib/book/title",
	"//title",
	"//book//last",
	"/bib/book[price < 50]/title",
	"/bib/book[@year]",
	"//book[author/last]",
	"/bib/*",
	"//author/last",
	"//nosuch",
	"//book[nosuch]",
}

// checkBatchedAgrees demands that the compiled kernel reproduce the
// interpreted matcher exactly, serially and under every worker budget.
func checkBatchedAgrees(t *testing.T, st *storage.Store, q string, contexts []storage.NodeRef) {
	t.Helper()
	g := graphOf(t, q)
	want, err := MatchOutput(st, g, contexts)
	if err != nil {
		t.Fatalf("%s interpreted: %v", q, err)
	}
	var c tally.Counters
	got, err := MatchOutputBatched(st, g, contexts, nil, &c)
	if err != nil {
		t.Fatalf("%s batched: %v", q, err)
	}
	if !refsEqual(got, want) {
		t.Fatalf("%s batched: %d refs, interpreted %d refs\nbatched:     %v\ninterpreted: %v",
			q, len(got), len(want), got, want)
	}
	if len(want) > 0 && c.NodesVisited == 0 {
		t.Fatalf("%s batched: no visits tallied", q)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		pgot, _, err := MatchOutputParallelBatched(st, g, contexts, workers, nil, nil)
		if err != nil {
			t.Fatalf("%s batched workers=%d: %v", q, workers, err)
		}
		if !refsEqual(pgot, want) {
			t.Fatalf("%s batched workers=%d: %d refs, interpreted %d refs",
				q, workers, len(pgot), len(want))
		}
	}
}

func TestBatchedMatchesInterpreter(t *testing.T) {
	st := storage.MustLoad(bibXML)
	root := []storage.NodeRef{st.Root()}
	for _, q := range batchedQueries {
		checkBatchedAgrees(t, st, q, root)
	}
}

func TestBatchedMatchesInterpreterXMark(t *testing.T) {
	st := storage.FromDoc(xmark.Auction(4))
	root := []storage.NodeRef{st.Root()}
	for _, q := range []string{
		"//item/name",
		"//item[payment]/name",
		"/site/regions//item",
		"//person[profile/age]/name",
		"//keyword",
		"/site/*",
	} {
		checkBatchedAgrees(t, st, q, root)
	}
}

// TestBatchedNestedContexts exercises the overlap handling: every
// section on a chain is an ancestor of the chain's title, so matches
// repeat across context passes and must be deduplicated, exactly like
// the interpreted matcher.
func TestBatchedNestedContexts(t *testing.T) {
	st := storage.FromDoc(xmark.Deep(6, 24))
	sections := nodesNamed(st, "section")
	checkBatchedAgrees(t, st, "//title", sections)
	checkBatchedAgrees(t, st, "section/title", sections)
}

// TestBatchedRandomContexts fuzzes context selection: arbitrary nodes
// (any kind, duplicates, reversed order) through every query.
func TestBatchedRandomContexts(t *testing.T) {
	st := storage.FromDoc(xmark.Auction(2))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		k := 1 + rng.Intn(9)
		contexts := make([]storage.NodeRef, k)
		for i := range contexts {
			contexts[i] = storage.NodeRef(rng.Intn(st.NodeCount()))
		}
		q := batchedQueries[trial%len(batchedQueries)]
		checkBatchedAgrees(t, st, q, contexts)
	}
}

// TestBatchedWidePartitions pins the parallel chunking on a wide
// document: the chunked kernels must actually fan out and still agree.
func TestBatchedWidePartitions(t *testing.T) {
	st := storage.FromDoc(xmark.Wide(600))
	g := graphOf(t, "//entry[@n]")
	lists := nodesNamed(st, "list")
	if len(lists) != 1 {
		t.Fatalf("want one list element, got %d", len(lists))
	}
	want, err := MatchOutput(st, g, lists)
	if err != nil {
		t.Fatal(err)
	}
	got, pr, err := MatchOutputParallelBatched(st, g, lists, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !refsEqual(got, want) {
		t.Fatalf("parallel batched diverged: %d vs %d refs", len(got), len(want))
	}
	if !pr.Parallel() {
		t.Fatalf("fell back to serial: %s", pr.Fallback)
	}
	for _, p := range pr.Partitions {
		if p.Kind != "range" {
			t.Fatalf("partition kind = %q, want range", p.Kind)
		}
	}
}

// TestBatchedInterrupt verifies the kernel's poll discipline: a firing
// interrupt aborts the scan with its error, serially and in parallel.
func TestBatchedInterrupt(t *testing.T) {
	st := storage.FromDoc(xmark.Auction(2))
	g := graphOf(t, "//item/name")
	boom := errors.New("boom")
	calls := 0
	interrupt := func() error {
		calls++
		if calls > 2 {
			return boom
		}
		return nil
	}
	if _, err := MatchOutputBatched(st, g, []storage.NodeRef{st.Root()}, interrupt, nil); !errors.Is(err, boom) {
		t.Fatalf("serial err = %v, want boom", err)
	}
	calls = 0
	if _, _, err := MatchOutputParallelBatched(st, g, []storage.NodeRef{st.Root()}, 4, interrupt, nil); !errors.Is(err, boom) {
		t.Fatalf("parallel err = %v, want boom", err)
	}
}
