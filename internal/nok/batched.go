package nok

// Batched τ execution: the same matcher semantics as MatchOutputCounted
// and MatchOutputParallel, but evaluated by the compiled batch kernel
// (package batch) instead of the recursive interpreter. The kernel
// replaces per-node FirstChild/NextSibling navigation (a FindClose each)
// with linear scans of the parenthesis sequence, and operators exchange
// node ids in blocks. Results are bit-identical; in the parallel form a
// partition chunk is exactly one batch pipeline.

import (
	"time"

	"xqp/internal/batch"
	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/tally"
)

// MatchOutputBatched is MatchOutputCounted executed by the compiled
// batch kernel. It fails with batch.ErrTooLarge for patterns over 64
// vertices (the same bound the interpreter enforces via ErrTooLarge);
// the executor falls back to the interpreter in that case.
func MatchOutputBatched(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, interrupt func() error, c *tally.Counters) ([]storage.NodeRef, error) {
	prog, err := batch.For(g)
	if err != nil {
		return nil, err
	}
	k := prog.Bind(st).NewKernel(interrupt)
	if c != nil {
		defer func() { c.NodesVisited += k.Visits() }()
	}
	var out []storage.NodeRef
	err = k.MatchOutput(contexts, func(blk []storage.NodeRef) {
		out = append(out, blk...)
	})
	if err != nil {
		return nil, err
	}
	return mergeSorted(out), nil
}

// MatchOutputParallelBatched is MatchOutputParallel executed by batch
// kernels: each partition chunk runs one compiled batch pipeline on its
// own kernel over a disjoint preorder window. A single context's child
// subtrees are chunked into contiguous ranges (chunk = batch); the
// upward passes run per chunk, the anchor's vertex set is stitched
// serially from the chunk summaries, and the downward passes fan out
// again over the same chunks. Many contexts chunk the context list like
// the interpreted parallel matcher.
func MatchOutputParallelBatched(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, workers int, interrupt func() error, c *tally.Counters) (refs []storage.NodeRef, pr ParallelResult, err error) {
	prog, err := batch.For(g)
	if err != nil {
		return nil, ParallelResult{Workers: workers}, err
	}
	bnd := prog.Bind(st)
	var visits int64
	if c != nil {
		defer func() { c.NodesVisited += visits }()
	}
	serial := func(reason string) ([]storage.NodeRef, ParallelResult, error) {
		k := bnd.NewKernel(interrupt)
		var out []storage.NodeRef
		kerr := k.MatchOutput(contexts, func(blk []storage.NodeRef) {
			out = append(out, blk...)
		})
		visits += k.Visits()
		if kerr != nil {
			return nil, ParallelResult{Workers: workers}, kerr
		}
		return mergeSorted(out), ParallelResult{Workers: workers, Fallback: reason}, nil
	}
	if workers < 2 {
		return serial("workers < 2")
	}
	if len(contexts) == 0 {
		return nil, ParallelResult{Workers: workers, Fallback: "no context nodes"}, nil
	}
	if bnd.Dead() {
		// Some vertex's tag does not occur in this document: the pattern
		// cannot match anywhere, no passes needed.
		return nil, ParallelResult{Workers: workers, Fallback: "pattern tag absent from document"}, nil
	}
	if len(contexts) > 1 {
		return batchedContextChunks(bnd, contexts, workers, interrupt, &visits)
	}

	// Single context: descend the spine of single-child nodes first —
	// absolute queries anchor τ at the document root, whose subtree
	// funnels through one top-level element before fanning out. The
	// spine is evaluated serially (it is O(depth)); the first node with
	// several children provides the sibling subtrees that tile its
	// preorder range contiguously, so chunking at child boundaries
	// yields disjoint forest ranges — one batch pipeline each, no
	// shared window.
	ctx := contexts[0]
	spine := []storage.NodeRef{ctx}
	var kids []storage.NodeRef
	var aux int64
	for {
		cur := spine[len(spine)-1]
		kids = kids[:0]
		for ch := st.FirstChild(cur); ch != storage.NilRef; ch = st.NextSibling(ch) {
			aux++
			if interrupt != nil && aux%pollEvery == 0 {
				if ierr := interrupt(); ierr != nil {
					return nil, ParallelResult{Workers: workers}, ierr
				}
			}
			kids = append(kids, ch)
		}
		if len(kids) != 1 {
			break
		}
		spine = append(spine, kids[0])
	}
	if len(kids) < 2 {
		return serial("single partition")
	}
	fan := spine[len(spine)-1]
	end := fan + storage.NodeRef(st.SubtreeSize(fan))
	groups := groupBySize(st, kids, workers*partitionsPerWorker)
	if len(groups) < 2 {
		return serial("single partition")
	}

	type chunkState struct {
		k           *batch.Kernel
		lo, hi      storage.NodeRef
		cover, deep uint64
		out         []storage.NodeRef
		err         error
		dur         time.Duration
	}
	states := make([]*chunkState, len(groups))
	collect := func() {
		for _, cs := range states {
			if cs != nil {
				visits += cs.k.Visits()
			}
		}
	}
	firstErr := func(rerr error) error {
		for _, cs := range states {
			if rerr == nil && cs != nil && cs.err != nil {
				rerr = cs.err
			}
		}
		return rerr
	}

	// Phase 1: upward pass per chunk, in parallel. Each kernel owns the
	// S/ends window of its own range.
	rerr := runTasks(workers, len(groups), func(i int) {
		t0 := time.Now()
		lo := kids[groups[i][0]]
		hi := end
		if g1 := groups[i][1]; g1 < len(kids) {
			hi = kids[g1]
		}
		cs := &chunkState{k: bnd.NewKernel(interrupt), lo: lo, hi: hi}
		cs.k.Window(lo, hi)
		cs.cover, cs.deep, cs.err = cs.k.UpRange(lo, hi)
		cs.dur = time.Since(t0)
		states[i] = cs
	})
	if rerr = firstErr(rerr); rerr != nil {
		collect()
		return nil, ParallelResult{Workers: workers}, rerr
	}

	// Phase 2: stitch serially up the spine from the chunk summaries.
	// Each spine node's vertex set folds its single child's S and the
	// subtree union below it, ending with the anchor test at the context.
	var cover, deep uint64
	for _, cs := range states {
		cover |= cs.cover
		deep |= cs.deep
	}
	visits += int64(len(spine))
	sSpine := make([]uint64, len(spine))
	for i := len(spine) - 1; i >= 0; i-- {
		s := bnd.VertexSet(spine[i], cover, deep)
		sSpine[i] = s
		cover, deep = s, s|deep
	}
	parts := func() []tally.Partition {
		ps := make([]tally.Partition, len(states))
		for i, cs := range states {
			ps[i] = tally.Partition{
				Root:    int64(cs.lo),
				Kind:    "range",
				Nodes:   int64(cs.hi - cs.lo),
				Matches: int64(len(cs.out)),
				Dur:     cs.dur,
			}
		}
		return ps
	}
	if sSpine[0]&1 == 0 {
		// The anchor's downward constraints fail at the context: no
		// matches anywhere, skip the downward passes.
		collect()
		return nil, ParallelResult{Workers: workers, Partitions: parts()}, nil
	}

	// Downward pass along the spine (document order: every spine node
	// precedes every chunk node in preorder), yielding the allowed masks
	// the fan-out node's children start from.
	var out []storage.NodeRef
	if bnd.OutputIsAnchor() {
		out = append(out, ctx)
	}
	ac, ad := bnd.RootMasks()
	for i := 1; i < len(spine); i++ {
		emit, nac, nad := bnd.DescendStep(sSpine[i], ac, ad)
		if emit {
			out = append(out, spine[i])
		}
		ac, ad = nac, nad
	}
	if ac == 0 && ad == 0 {
		// The allowed masks drained on the spine: nothing can bind in
		// the chunks, skip the parallel downward passes.
		collect()
		return mergeSorted(out), ParallelResult{Workers: workers, Partitions: parts()}, nil
	}

	// Phase 3: downward pass per chunk, in parallel, over the windows
	// phase 1 filled.
	rerr = runTasks(workers, len(groups), func(i int) {
		cs := states[i]
		t0 := time.Now()
		sink := func(blk []storage.NodeRef) { cs.out = append(cs.out, blk...) }
		cs.err = cs.k.DownRange(cs.lo, cs.hi, ac, ad, sink)
		cs.k.Flush(sink)
		cs.dur += time.Since(t0)
	})
	if rerr = firstErr(rerr); rerr != nil {
		collect()
		return nil, ParallelResult{Workers: workers}, rerr
	}
	for _, cs := range states {
		out = append(out, cs.out...)
	}
	collect()
	return mergeSorted(out), ParallelResult{Workers: workers, Partitions: parts()}, nil
}

// batchedContextChunks evaluates a multi-context τ by chunking the
// context list, one batch pipeline per chunk. Nested contexts may land
// in different chunks yet produce the same matches, so the merge sorts
// and deduplicates exactly like the interpreted context chunking.
func batchedContextChunks(bnd *batch.Bound, contexts []storage.NodeRef, workers int, interrupt func() error, visits *int64) ([]storage.NodeRef, ParallelResult, error) {
	nTasks := workers * partitionsPerWorker
	if nTasks > len(contexts) {
		nTasks = len(contexts)
	}
	bounds := chunkBounds(len(contexts), nTasks)
	type chunkRes struct {
		k    *batch.Kernel
		refs []storage.NodeRef
		err  error
		dur  time.Duration
	}
	res := make([]*chunkRes, nTasks)
	rerr := runTasks(workers, nTasks, func(i int) {
		t0 := time.Now()
		r := &chunkRes{k: bnd.NewKernel(interrupt)}
		r.err = r.k.MatchOutput(contexts[bounds[i]:bounds[i+1]], func(blk []storage.NodeRef) {
			r.refs = append(r.refs, blk...)
		})
		r.dur = time.Since(t0)
		res[i] = r
	})
	parts := make([]tally.Partition, 0, nTasks)
	var out []storage.NodeRef
	for i, r := range res {
		if r == nil {
			continue // task aborted by an interrupt
		}
		*visits += r.k.Visits()
		if rerr == nil && r.err != nil {
			rerr = r.err
		}
		chunk := contexts[bounds[i]:bounds[i+1]]
		parts = append(parts, tally.Partition{
			Root:    int64(chunk[0]),
			Kind:    "contexts",
			Nodes:   int64(len(chunk)),
			Matches: int64(len(r.refs)),
			Dur:     r.dur,
		})
		out = append(out, r.refs...)
	}
	if rerr != nil {
		return nil, ParallelResult{Workers: workers}, rerr
	}
	return mergeSorted(out), ParallelResult{Workers: workers, Partitions: parts}, nil
}
