package nok

import (
	"sort"

	"xqp/internal/join"
	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/tally"
	"xqp/internal/vocab"
)

// MatchHybrid implements the paper's Section 4.2 evaluation strategy for
// general path expressions: partition the pattern graph into NoK
// fragments (maximal parent-child components), evaluate each fragment
// navigationally over tag-index candidates, and join the fragment results
// on their ancestor-descendant relationships with structural joins.
//
// Fragments are processed bottom-up so that each fragment's root bindings
// already account for the existence of its descendant-linked fragments;
// a final top-down pass filters the chain of fragments leading to the
// output vertex.
func MatchHybrid(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef) ([]storage.NodeRef, error) {
	return MatchHybridInterruptible(st, g, contexts, nil)
}

// MatchHybridInterruptible is MatchHybrid with a cancellation poll (see
// MatchInterruptible).
func MatchHybridInterruptible(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, interrupt func() error) ([]storage.NodeRef, error) {
	return MatchHybridCounted(st, g, contexts, interrupt, nil)
}

// MatchHybridCounted is MatchHybridInterruptible reporting actual work
// into c (when non-nil): nodes visited by fragment navigation, stream
// elements fed into the glue structural joins, and the intermediate
// solutions those joins produce.
func MatchHybridCounted(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, interrupt func() error, c *tally.Counters) (refs []storage.NodeRef, err error) {
	m, err := newMatcher(st, g)
	if err != nil {
		return nil, err
	}
	m.interrupt = interrupt
	if c != nil {
		defer func() { c.NodesVisited += m.visits }()
	}
	defer catchInterrupt(&err)
	for _, absent := range m.absent {
		if absent {
			return nil, nil
		}
	}
	p := g.Partition()
	h := &hybrid{m: m, p: p, validRoots: make([][]storage.NodeRef, len(p.Fragments))}
	// Fragment children always have larger indexes than their parent
	// (Partition builds depth-first), so reverse order is bottom-up.
	for fi := len(p.Fragments) - 1; fi >= 0; fi-- {
		cands := h.candidates(fi, contexts)
		b := h.evalFragment(fi, cands)
		h.validRoots[fi] = b[p.Fragments[fi].Root]
	}
	// Top-down: walk the fragment chain from the anchor fragment to the
	// fragment containing the output vertex, narrowing roots per hop.
	outFrag := p.FragmentOf[g.Output]
	chain := h.fragmentChain(outFrag)
	roots := h.validRoots[0]
	for i := 1; i < len(chain); i++ {
		prev, cur := chain[i-1], chain[i]
		linkFrom := h.linkSource(prev, cur)
		b := h.evalFragment(prev, roots)
		fromRefs := b[linkFrom]
		if c != nil {
			c.StreamElems += int64(len(fromRefs) + len(h.validRoots[cur]))
		}
		roots = intersectDescendants(st, fromRefs, h.validRoots[cur])
		if c != nil {
			c.Solutions += int64(len(roots))
		}
	}
	final := h.evalFragment(chain[len(chain)-1], roots)
	return final[g.Output], nil
}

type hybrid struct {
	m          *matcher
	p          *pattern.Partition
	validRoots [][]storage.NodeRef
}

// candidates returns the root candidates of a fragment: the given
// contexts for the anchor fragment, else the tag-index posting list of
// the fragment root's tag (or a kind scan for wildcard/kind tests).
func (h *hybrid) candidates(fi int, contexts []storage.NodeRef) []storage.NodeRef {
	if fi == 0 {
		return contexts
	}
	root := h.p.Fragments[fi].Root
	if sym := h.m.tagSym[root]; sym != vocab.None {
		return h.m.st.TagRefs(sym)
	}
	// Wildcard or kind test: scan.
	var out []storage.NodeRef
	st := h.m.st
	for i := 0; i < st.NodeCount(); i++ {
		h.m.pollAux()
		n := storage.NodeRef(i)
		if pattern.MatchesVertex(st, n, &h.m.g.Vertices[root]) {
			out = append(out, n)
		}
	}
	return out
}

// linkSource returns the vertex in fragment prev whose descendant link
// targets fragment cur.
func (h *hybrid) linkSource(prev, cur int) pattern.VertexID {
	for _, l := range h.p.Links[prev] {
		if l.ToFragment == cur {
			return l.From
		}
	}
	panic("nok: fragments not linked")
}

// fragmentChain returns the fragment indexes from 0 to target following
// partition links.
func (h *hybrid) fragmentChain(target int) []int {
	parent := make([]int, len(h.p.Fragments))
	for i := range parent {
		parent[i] = -1
	}
	for fi, links := range h.p.Links {
		for _, l := range links {
			parent[l.ToFragment] = fi
		}
	}
	var chain []int
	for f := target; f >= 0; f = parent[f] {
		chain = append([]int{f}, chain...)
	}
	return chain
}

// evalFragment evaluates the child-only sub-pattern of fragment fi over
// the candidate roots, returning bindings per fragment vertex. Vertices
// with descendant links additionally require a valid linked-fragment root
// below them (checked against validRoots, which bottom-up ordering has
// already populated).
func (h *hybrid) evalFragment(fi int, cands []storage.NodeRef) Bindings {
	frag := h.p.Fragments[fi]
	m := h.m
	st := m.st
	acc := make([][]storage.NodeRef, m.g.VertexCount())
	// linkOK checks the descendant-link constraints of a vertex.
	linkOK := func(v pattern.VertexID, n storage.NodeRef) bool {
		for _, l := range h.p.Links[fi] {
			if l.From != v {
				continue
			}
			targets := h.validRoots[l.ToFragment]
			end := n + storage.NodeRef(st.SubtreeSize(n))
			i := sort.Search(len(targets), func(i int) bool { return targets[i] > n })
			if i >= len(targets) || targets[i] >= end {
				return false
			}
		}
		return true
	}
	var rec func(n storage.NodeRef, v pattern.VertexID) bool
	rec = func(n storage.NodeRef, v pattern.VertexID) bool {
		m.poll()
		if !m.test(n, int(v)) || !linkOK(v, n) {
			return false
		}
		ok := true
		for _, e := range m.g.Children[v] {
			if e.Rel != pattern.RelChild {
				continue // descendant edges are fragment links
			}
			found := false
			for c := st.FirstChild(n); c != storage.NilRef; c = st.NextSibling(c) {
				if rec(c, e.To) {
					found = true
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			acc[v] = append(acc[v], n)
			return true
		}
		m.rollback(acc, v, n)
		return false
	}
	// For the anchor fragment the candidate is the context node itself;
	// vertex 0 carries a node() test, so rec handles both cases
	// uniformly.
	for _, c := range cands {
		rec(c, frag.Root)
	}
	out := Bindings{}
	for v, refs := range acc {
		if refs == nil {
			continue
		}
		if !sortedUnique(refs) {
			sortRefs(refs)
			refs = dedupRefs(refs)
		}
		out[pattern.VertexID(v)] = refs
	}
	return out
}

// intersectDescendants returns the members of targets that are proper
// descendants of some node in ancs, in document order.
func intersectDescendants(st *storage.Store, ancs, targets []storage.NodeRef) []storage.NodeRef {
	if len(ancs) == 0 || len(targets) == 0 {
		return nil
	}
	aStream := join.ContextStream(st, ancs)
	dStream := join.ContextStream(st, targets)
	out := join.StackTreeDescendants(aStream, dStream, pattern.RelDescendant)
	refs := make([]storage.NodeRef, len(out))
	for i, e := range out {
		refs[i] = e.Ref
	}
	return refs
}
