package naive

import (
	"sort"

	"xqp/internal/ast"
	"xqp/internal/batch"
	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/tally"
	"xqp/internal/vocab"
)

// MatchOutputBatched is MatchOutputCounted over a batched candidate
// stream: instead of testing bind at every document node, candidates
// for the output vertex come from the tag index (name-test outputs) or
// the context list (anchor outputs), consumed in blocks. Verdicts use
// the same memoized recursion, and every candidate source is a superset
// of the nodes passing the output vertex's test (bind implies test), so
// results are identical to the full scan.
func MatchOutputBatched(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, interrupt func() error, c *tally.Counters) (refs []storage.NodeRef, err error) {
	defer catchInterrupt(&err)
	ctxSet := map[storage.NodeRef]bool{}
	for _, ctx := range contexts {
		ctxSet[ctx] = true
	}
	e := newEvaluator(st, g, ctxSet, interrupt)
	defer func() {
		if c != nil {
			c.NodesVisited += e.visits
		}
	}()
	var out []storage.NodeRef
	scan := func(cands []storage.NodeRef) {
		for _, n := range cands {
			if n < 0 || int(n) >= st.NodeCount() {
				continue
			}
			if e.bind(n, g.Output) {
				out = append(out, n)
			}
		}
	}
	vx := g.Vertices[g.Output]
	switch {
	case g.Output == 0:
		// The anchor only binds at context nodes.
		scan(contexts)
	case vx.Test.Kind == ast.TestName && vx.Test.Name != "*":
		name := vx.Test.Name
		if vx.Attribute {
			name = "@" + name
		}
		sym := st.Vocab.Lookup(name)
		if sym == vocab.None {
			return nil, nil // tag absent: the output test passes nowhere
		}
		scan(st.TagRefs(sym))
	default:
		// Generic output tests (wildcards, kind tests) have no index:
		// scan every node, block by block.
		total := st.NodeCount()
		blk := make([]storage.NodeRef, 0, batch.BlockSize)
		for i := 0; i < total; i++ {
			blk = append(blk, storage.NodeRef(i))
			if len(blk) == batch.BlockSize || i == total-1 {
				scan(blk)
				blk = blk[:0]
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Candidate streams are unique except for repeated context nodes;
	// drop adjacent duplicates so results match the full scan exactly.
	dd := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dd = append(dd, r)
		}
	}
	return dd, nil
}
