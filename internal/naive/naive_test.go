package naive

import (
	"testing"

	"xqp/internal/ast"
	"xqp/internal/parser"
	"xqp/internal/pattern"
	"xqp/internal/storage"
)

func graphOf(t testing.TB, src string) *pattern.Graph {
	t.Helper()
	e, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pattern.FromPath(e.(*ast.PathExpr))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMatchOutputBasic(t *testing.T) {
	st := storage.MustLoad(`<a><b><c/></b><b/><x><b><c/></b></x></a>`)
	root := []storage.NodeRef{st.Root()}
	cases := []struct {
		q    string
		want int
	}{
		{"/a/b", 2},
		{"//b", 3},
		{"//b[c]", 2},
		{"/a/b/c", 1},
		{"//x//c", 1},
		{"/a/*", 3},
		{"//missing", 0},
	}
	for _, c := range cases {
		got := MatchOutput(st, graphOf(t, c.q), root)
		if len(got) != c.want {
			t.Errorf("%s: %d matches, want %d", c.q, len(got), c.want)
		}
	}
}

func TestContextRestriction(t *testing.T) {
	st := storage.MustLoad(`<a><b><c/></b><b><c/></b></a>`)
	bs := st.ElementRefs("b")
	got := MatchOutput(st, graphOf(t, "c"), bs[:1])
	if len(got) != 1 {
		t.Fatalf("restricted match = %d, want 1", len(got))
	}
	// No contexts: nothing matches.
	if got := MatchOutput(st, graphOf(t, "c"), nil); len(got) != 0 {
		t.Fatalf("empty contexts matched %d", len(got))
	}
}

func TestDocumentOrderOutput(t *testing.T) {
	st := storage.MustLoad(`<a><b/><c><b/></c><b/></a>`)
	got := MatchOutput(st, graphOf(t, "//b"), []storage.NodeRef{st.Root()})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("not in document order")
		}
	}
}

func TestValuePredicates(t *testing.T) {
	st := storage.MustLoad(`<a><p>5</p><p>15</p></a>`)
	got := MatchOutput(st, graphOf(t, "/a/p[. > 10]"), []storage.NodeRef{st.Root()})
	if len(got) != 1 {
		t.Fatalf("value pred matches = %d", len(got))
	}
}
