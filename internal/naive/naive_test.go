package naive

import (
	"testing"

	"xqp/internal/ast"
	"xqp/internal/parser"
	"xqp/internal/pattern"
	"xqp/internal/storage"
)

func graphOf(t testing.TB, src string) *pattern.Graph {
	t.Helper()
	e, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pattern.FromPath(e.(*ast.PathExpr))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMatchOutputBasic(t *testing.T) {
	st := storage.MustLoad(`<a><b><c/></b><b/><x><b><c/></b></x></a>`)
	root := []storage.NodeRef{st.Root()}
	cases := []struct {
		q    string
		want int
	}{
		{"/a/b", 2},
		{"//b", 3},
		{"//b[c]", 2},
		{"/a/b/c", 1},
		{"//x//c", 1},
		{"/a/*", 3},
		{"//missing", 0},
	}
	for _, c := range cases {
		got := MatchOutput(st, graphOf(t, c.q), root)
		if len(got) != c.want {
			t.Errorf("%s: %d matches, want %d", c.q, len(got), c.want)
		}
	}
}

func TestContextRestriction(t *testing.T) {
	st := storage.MustLoad(`<a><b><c/></b><b><c/></b></a>`)
	bs := st.ElementRefs("b")
	got := MatchOutput(st, graphOf(t, "c"), bs[:1])
	if len(got) != 1 {
		t.Fatalf("restricted match = %d, want 1", len(got))
	}
	// No contexts: nothing matches.
	if got := MatchOutput(st, graphOf(t, "c"), nil); len(got) != 0 {
		t.Fatalf("empty contexts matched %d", len(got))
	}
}

func TestDocumentOrderOutput(t *testing.T) {
	st := storage.MustLoad(`<a><b/><c><b/></c><b/></a>`)
	got := MatchOutput(st, graphOf(t, "//b"), []storage.NodeRef{st.Root()})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("not in document order")
		}
	}
}

func TestValuePredicates(t *testing.T) {
	st := storage.MustLoad(`<a><p>5</p><p>15</p></a>`)
	got := MatchOutput(st, graphOf(t, "/a/p[. > 10]"), []storage.NodeRef{st.Root()})
	if len(got) != 1 {
		t.Fatalf("value pred matches = %d", len(got))
	}
}

func TestMatchOutputWithin(t *testing.T) {
	st := storage.MustLoad(`<a><b><c/></b><b/><x><b><c year="1"/></b></x></a>`)
	root := []storage.NodeRef{st.Root()}
	for _, q := range []string{`//b`, `//b/c`, `/a/b`, `//x//c`, `//c[@year = 1]`} {
		g := graphOf(t, q)
		full := MatchOutput(st, g, root)
		// Restricting to the full node range must reproduce the scan.
		all := make([]storage.NodeRef, st.NodeCount())
		for i := range all {
			all[i] = storage.NodeRef(i)
		}
		got, err := MatchOutputWithin(st, g, root, all)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(full) {
			t.Fatalf("%s: within(all) = %v, full scan = %v", q, got, full)
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("%s: within(all) = %v, full scan = %v", q, got, full)
			}
		}
		// Restricting to a single match keeps exactly it; out-of-range
		// candidates are ignored.
		if len(full) > 0 {
			one, err := MatchOutputWithin(st, g, root, []storage.NodeRef{full[0], storage.NodeRef(st.NodeCount() + 7)})
			if err != nil {
				t.Fatal(err)
			}
			if len(one) != 1 || one[0] != full[0] {
				t.Fatalf("%s: within(first) = %v, want [%d]", q, one, full[0])
			}
		}
	}
}
