// Package naive implements tree-pattern matching by direct recursive
// navigation, the "navigational approach" baseline the paper cites
// (Section 5, [10]): for every candidate node, test the pattern
// constraints by walking the tree, with memoization but no single-pass
// machinery and no structural joins.
//
// It is deliberately straightforward: it serves both as the baseline in
// the experiments and as the differential-testing oracle for the NoK
// matcher and the join-based algorithms.
package naive

import (
	"sort"

	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/tally"
)

// pollEvery is how many constraint tests pass between cancellation
// checks; a power of two keeps the modulo cheap.
const pollEvery = 256

// interruptPanic carries a cancellation error up the recursion;
// catchInterrupt converts it back at the package boundary.
type interruptPanic struct{ err error }

// catchInterrupt recovers an interruptPanic into *err; any other panic
// continues to propagate.
func catchInterrupt(err *error) {
	if r := recover(); r != nil {
		ip, ok := r.(interruptPanic)
		if !ok {
			panic(r)
		}
		*err = ip.err
	}
}

type evaluator struct {
	st       *storage.Store
	g        *pattern.Graph
	contexts map[storage.NodeRef]bool
	downMemo map[key]bool
	bindMemo map[key]bool
	// interrupt, when non-nil, is polled every pollEvery visits; a
	// non-nil return unwinds the recursion via interruptPanic.
	interrupt func() error
	// visits counts constraint tests (the navigational work actually
	// performed, memo hits excluded) for execution traces.
	visits int64
}

type key struct {
	n storage.NodeRef
	v pattern.VertexID
}

func newEvaluator(st *storage.Store, g *pattern.Graph, contexts map[storage.NodeRef]bool, interrupt func() error) *evaluator {
	return &evaluator{
		st:        st,
		g:         g,
		contexts:  contexts,
		downMemo:  map[key]bool{},
		bindMemo:  map[key]bool{},
		interrupt: interrupt,
	}
}

// poll counts one unit of navigational work and periodically checks the
// interrupt callback, unwinding with interruptPanic on cancellation.
func (e *evaluator) poll() {
	e.visits++
	if e.interrupt == nil || e.visits%pollEvery != 0 {
		return
	}
	if err := e.interrupt(); err != nil {
		panic(interruptPanic{err})
	}
}

// MatchOutput returns the output-vertex matches of the pattern graph in
// document order, evaluated by brute-force navigation.
func MatchOutput(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef) []storage.NodeRef {
	refs, _ := MatchOutputCounted(st, g, contexts, nil, nil)
	return refs
}

// MatchOutputCounted is MatchOutput reporting actual work into c (when
// non-nil): every un-memoized constraint test counts as a node visit.
// interrupt, when non-nil, is polled periodically during the scan; its
// error cancels the match.
func MatchOutputCounted(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, interrupt func() error, c *tally.Counters) (refs []storage.NodeRef, err error) {
	defer catchInterrupt(&err)
	ctxSet := map[storage.NodeRef]bool{}
	for _, ctx := range contexts {
		ctxSet[ctx] = true
	}
	e := newEvaluator(st, g, ctxSet, interrupt)
	defer func() {
		if c != nil {
			c.NodesVisited += e.visits
		}
	}()
	var out []storage.NodeRef
	for n := storage.NodeRef(0); int(n) < st.NodeCount(); n++ {
		if e.bind(n, g.Output) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// MatchOutputWithin reports which of the candidate refs match the output
// vertex, in document order. It evaluates membership per candidate with
// the same memoized recursion as MatchOutput (so its verdicts agree with
// the full scan by construction), but touches only the candidates'
// ancestor chains and predicate witnesses instead of every node — the
// primitive behind incremental re-evaluation over dirty regions
// (internal/cq): after a local update, only nodes whose membership could
// have changed are re-tested.
func MatchOutputWithin(st *storage.Store, g *pattern.Graph, contexts, candidates []storage.NodeRef) (refs []storage.NodeRef, err error) {
	return MatchOutputWithinCounted(st, g, contexts, candidates, nil)
}

// MatchOutputWithinCounted is MatchOutputWithin reporting actual work
// into c (when non-nil), with the same node-visit accounting as
// MatchOutputCounted — the feed that lets region-restricted dispatches
// carry honest work counters into the calibration layer.
func MatchOutputWithinCounted(st *storage.Store, g *pattern.Graph, contexts, candidates []storage.NodeRef, c *tally.Counters) (refs []storage.NodeRef, err error) {
	defer catchInterrupt(&err)
	ctxSet := map[storage.NodeRef]bool{}
	for _, ctx := range contexts {
		ctxSet[ctx] = true
	}
	e := newEvaluator(st, g, ctxSet, nil)
	defer func() {
		if c != nil {
			c.NodesVisited += e.visits
		}
	}()
	var out []storage.NodeRef
	for _, n := range candidates {
		if n < 0 || int(n) >= st.NodeCount() {
			continue
		}
		if e.bind(n, g.Output) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// test applies the vertex's node test and value predicates; the anchor
// (vertex 0) additionally requires the node to be a context node.
func (e *evaluator) test(n storage.NodeRef, v pattern.VertexID) bool {
	e.poll()
	if v == 0 && !e.contexts[n] {
		return false
	}
	return pattern.MatchesVertex(e.st, n, &e.g.Vertices[v])
}

// down reports whether the downward sub-pattern at v matches at n.
func (e *evaluator) down(n storage.NodeRef, v pattern.VertexID) bool {
	k := key{n, v}
	if r, ok := e.downMemo[k]; ok {
		return r
	}
	e.downMemo[k] = false // guard (patterns are acyclic; this is for safety)
	r := e.downEval(n, v)
	e.downMemo[k] = r
	return r
}

func (e *evaluator) downEval(n storage.NodeRef, v pattern.VertexID) bool {
	if !e.test(n, v) {
		return false
	}
	for _, edge := range e.g.Children[v] {
		found := false
		if edge.Rel == pattern.RelChild {
			for c := e.st.FirstChild(n); c != storage.NilRef; c = e.st.NextSibling(c) {
				if e.down(c, edge.To) {
					found = true
					break
				}
			}
		} else {
			end := n + storage.NodeRef(e.st.SubtreeSize(n))
			for d := n + 1; d < end; d++ {
				if e.down(d, edge.To) {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// bind reports whether v can be bound at n in some full pattern match.
func (e *evaluator) bind(n storage.NodeRef, v pattern.VertexID) bool {
	k := key{n, v}
	if r, ok := e.bindMemo[k]; ok {
		return r
	}
	e.bindMemo[k] = false
	r := e.down(n, v) && e.up(n, v)
	e.bindMemo[k] = r
	return r
}

// up reports whether v's pattern parent can be bound at the appropriate
// ancestor of n.
func (e *evaluator) up(n storage.NodeRef, v pattern.VertexID) bool {
	if v == 0 {
		return true
	}
	p, rel := e.g.Parent(v)
	if rel == pattern.RelChild {
		a := e.st.Parent(n)
		return a != storage.NilRef && e.bind(a, p)
	}
	for a := e.st.Parent(n); a != storage.NilRef; a = e.st.Parent(a) {
		if e.bind(a, p) {
			return true
		}
	}
	return false
}
