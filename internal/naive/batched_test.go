package naive

import (
	"errors"
	"testing"

	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/tally"
	"xqp/internal/xmark"
)

// TestBatchedMatchesCounted: the candidate-prefiltered batched evaluator
// must reproduce the full-scan evaluator exactly, across output shapes
// (anchor output, named output, attribute output, wildcard, kind test).
func TestBatchedMatchesCounted(t *testing.T) {
	st := storage.FromDoc(xmark.Auction(2))
	root := []storage.NodeRef{st.Root()}
	items := st.ElementRefs("item")
	for _, tc := range []struct {
		q        string
		contexts []storage.NodeRef
	}{
		{"//item/name", root},
		{"//item[payment]", root},
		{"//item[nosuch]", root},
		{"//nosuch", root},
		{"/site/*", root},
		{"//item[@id]", root},
		{"name", items},
		{"//text()", root},
	} {
		g := graphOf(t, tc.q)
		var cw, cb tally.Counters
		want, err := MatchOutputCounted(st, g, tc.contexts, nil, &cw)
		if err != nil {
			t.Fatalf("%s counted: %v", tc.q, err)
		}
		got, err := MatchOutputBatched(st, g, tc.contexts, nil, &cb)
		if err != nil {
			t.Fatalf("%s batched: %v", tc.q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: batched %d refs, counted %d refs", tc.q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: ref %d differs: %d vs %d", tc.q, i, got[i], want[i])
			}
		}
	}
}

// anchorOutput retargets a graph's output to the anchor vertex, the
// shape hybrid decomposition produces ("contexts satisfying the
// pattern"). FromPath never emits it directly.
func anchorOutput(g *pattern.Graph) *pattern.Graph {
	g.Vertices[g.Output].Output = false
	g.Output = 0
	g.Vertices[0].Output = true
	return g
}

// TestBatchedAnchorOutput: with the anchor as output, candidates are the
// context nodes themselves; repeated contexts must not duplicate results.
func TestBatchedAnchorOutput(t *testing.T) {
	st := storage.FromDoc(xmark.Auction(2))
	items := st.ElementRefs("item")
	dup := append(append([]storage.NodeRef{}, items...), items...)
	g := anchorOutput(graphOf(t, "payment"))
	want, err := MatchOutputCounted(st, g, items, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("oracle found no items with payment")
	}
	got, err := MatchOutputBatched(st, g, dup, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d refs from duplicated contexts, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ref %d differs: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestBatchedInterrupt(t *testing.T) {
	st := storage.FromDoc(xmark.Auction(2))
	g := graphOf(t, "/site/*") // wildcard output: full scan, polls every block
	boom := errors.New("boom")
	if _, err := MatchOutputBatched(st, g, []storage.NodeRef{st.Root()}, func() error { return boom }, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
