package naive

import (
	"sync"
	"time"

	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/tally"
)

// MatchOutputParallel is MatchOutputCounted with the candidate scan
// partitioned into contiguous pre-order ranges evaluated on up to
// workers goroutines. Each worker owns its evaluator and memo tables
// (the shared context set is read-only), and an evaluator may navigate
// outside its own range while proving a candidate — ranges bound the
// candidates tested, not the navigation. Ranges are disjoint and
// increasing, so results concatenate in document order without
// deduplication. fallback is non-empty (and parts nil) when the match
// ran serially instead. interrupt, when non-nil, is polled by every
// worker; the first error cancels the whole match.
func MatchOutputParallel(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef, workers int, interrupt func() error, c *tally.Counters) (refs []storage.NodeRef, parts []tally.Partition, fallback string, err error) {
	n := st.NodeCount()
	if workers < 2 {
		refs, err = MatchOutputCounted(st, g, contexts, interrupt, c)
		return refs, nil, "workers < 2", err
	}
	nTasks := workers * 4
	if nTasks > n {
		nTasks = n
	}
	if nTasks < 2 {
		refs, err = MatchOutputCounted(st, g, contexts, interrupt, c)
		return refs, nil, "single partition", err
	}
	ctxSet := map[storage.NodeRef]bool{}
	for _, ctx := range contexts {
		ctxSet[ctx] = true
	}
	type rangeRes struct {
		refs   []storage.NodeRef
		visits int64
		dur    time.Duration
		err    error
	}
	res := make([]rangeRes, nTasks)
	lo := func(i int) storage.NodeRef { return storage.NodeRef(i * n / nTasks) }
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers && w < nTasks; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				e := newEvaluator(st, g, ctxSet, interrupt)
				out, rerr := func() (out []storage.NodeRef, rerr error) {
					defer catchInterrupt(&rerr)
					for n := lo(i); n < lo(i+1); n++ {
						if e.bind(n, g.Output) {
							out = append(out, n)
						}
					}
					return out, nil
				}()
				res[i] = rangeRes{refs: out, visits: e.visits, dur: time.Since(t0), err: rerr}
			}
		}()
	}
	for i := 0; i < nTasks; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	parts = make([]tally.Partition, nTasks)
	for i := range res {
		if err == nil && res[i].err != nil {
			err = res[i].err
		}
		refs = append(refs, res[i].refs...)
		parts[i] = tally.Partition{
			Root:    int64(lo(i)),
			Kind:    "range",
			Nodes:   int64(lo(i+1) - lo(i)),
			Matches: int64(len(res[i].refs)),
			Dur:     res[i].dur,
		}
		if c != nil {
			c.NodesVisited += res[i].visits
		}
	}
	if err != nil {
		return nil, nil, "", err
	}
	return refs, parts, "", nil
}
