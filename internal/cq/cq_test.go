package cq

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"xqp/internal/engine"
	"xqp/internal/storage"
)

const bibXML = `<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
</bib>`

func newBibEngine(t testing.TB) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{})
	if err := e.Register("bib.xml", strings.NewReader(bibXML)); err != nil {
		t.Fatal(err)
	}
	return e
}

func recv(t testing.TB, sub *Subscription) Delta {
	t.Helper()
	select {
	case d, ok := <-sub.Deltas():
		if !ok {
			t.Fatal("subscription channel closed while expecting a delta")
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delta")
	}
	panic("unreachable")
}

func apply(t testing.TB, e *engine.Engine, doc string, muts ...engine.Mutation) {
	t.Helper()
	if _, err := e.Apply(doc, muts); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeInitialSnapshot(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	defer r.Close()

	sub, err := r.Subscribe("bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	d := recv(t, sub)
	if !d.Full || d.Reason != "initial" || d.Gen != 1 {
		t.Fatalf("initial delta wrong: %+v", d)
	}
	state := d.Apply(nil)
	want := []string{"<title>TCP/IP Illustrated</title>", "<title>Data on the Web</title>"}
	if len(state) != 2 || state[0] != want[0] || state[1] != want[1] {
		t.Fatalf("initial snapshot = %q, want %q", state, want)
	}
	if d.Size != 2 {
		t.Fatalf("Size = %d, want 2", d.Size)
	}
}

func TestIncrementalInsertAndDelete(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	defer r.Close()

	sub, err := r.Subscribe("bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	state := recv(t, sub).Apply(nil)

	apply(t, e, "bib.xml", engine.Mutation{
		Op: engine.MutationInsert, Path: "/",
		XML: `<book year="2003"><title>XQuery from the Experts</title><price>49.95</price></book>`,
	})
	d := recv(t, sub)
	if d.Full {
		t.Fatalf("tracked insert fell back to full re-run (reason %q)", d.Reason)
	}
	if len(d.Removed) != 0 || len(d.Added) != 1 || d.Added[0].Index != 2 {
		t.Fatalf("insert delta wrong: %+v", d)
	}
	state = d.Apply(state)
	if len(state) != 3 || state[2] != "<title>XQuery from the Experts</title>" {
		t.Fatalf("state after insert: %q", state)
	}

	apply(t, e, "bib.xml", engine.Mutation{Op: engine.MutationDelete, Path: "/book[1]"})
	d = recv(t, sub)
	if d.Full {
		t.Fatalf("tracked delete fell back to full re-run (reason %q)", d.Reason)
	}
	if len(d.Removed) != 1 || d.Removed[0] != 0 || len(d.Added) != 0 {
		t.Fatalf("delete delta wrong: %+v", d)
	}
	state = d.Apply(state)
	if len(state) != 2 || state[0] != "<title>Data on the Web</title>" {
		t.Fatalf("state after delete: %q", state)
	}

	s := r.Stats()
	if s.Incremental != 2 {
		t.Fatalf("Incremental = %d, want 2 (stats %+v)", s.Incremental, s)
	}
}

func TestPredicateFlipViaScopeLift(t *testing.T) {
	e := newBibEngine(t)
	// The bib fixture is tiny, so a lifted book subtree exceeds the
	// default 25% region cap; raise it — the point here is the scope
	// lift, not the threshold.
	r := New(e, Config{MaxFullFraction: 1.0})
	defer r.Close()

	src := `/bib/book[price < 50]/title`
	sub, err := r.Subscribe("bib.xml", src)
	if err != nil {
		t.Fatal(err)
	}
	state := recv(t, sub).Apply(nil)
	if len(state) != 1 || state[0] != "<title>Data on the Web</title>" {
		t.Fatalf("initial predicate result: %q", state)
	}

	// Replace book 1's price so the predicate flips on an existing book:
	// the edit parent is the book, the qualifying vertex's scope lift
	// must re-match its subtree and surface the title.
	apply(t, e, "bib.xml",
		engine.Mutation{Op: engine.MutationDelete, Path: "/book[1]/price"},
		engine.Mutation{Op: engine.MutationInsert, Path: "/book[1]", XML: `<price>9.99</price>`},
	)
	d := recv(t, sub)
	if d.Full {
		t.Fatalf("predicate flip fell back to full re-run (reason %q)", d.Reason)
	}
	state = d.Apply(state)
	want := []string{"<title>TCP/IP Illustrated</title>", "<title>Data on the Web</title>"}
	if len(state) != 2 || state[0] != want[0] || state[1] != want[1] {
		t.Fatalf("state after flip: %q, want %q", state, want)
	}

	// Flip it back off.
	apply(t, e, "bib.xml",
		engine.Mutation{Op: engine.MutationDelete, Path: "/book[1]/price"},
		engine.Mutation{Op: engine.MutationInsert, Path: "/book[1]", XML: `<price>199.00</price>`},
	)
	state = recv(t, sub).Apply(state)
	if len(state) != 1 || state[0] != "<title>Data on the Web</title>" {
		t.Fatalf("state after unflip: %q", state)
	}
}

func TestUntrackedCommitFallsBack(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	defer r.Close()

	sub, err := r.Subscribe("bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	state := recv(t, sub).Apply(nil)

	// Re-registering replaces the store wholesale: no mutation records.
	if err := e.Register("bib.xml", strings.NewReader(`<bib><book><title>Only</title></book></bib>`)); err != nil {
		t.Fatal(err)
	}
	d := recv(t, sub)
	if !d.Full || d.Reason != "untracked-commit" {
		t.Fatalf("untracked commit delta: %+v", d)
	}
	state = d.Apply(state)
	if len(state) != 1 || state[0] != "<title>Only</title>" {
		t.Fatalf("state after replace: %q", state)
	}
}

func TestThresholdFallbackStillMinimalDelta(t *testing.T) {
	e := newBibEngine(t)
	// A vanishing threshold forces the full path on every commit while
	// keeping commits tracked: the ref-join must still yield a delta
	// that only mentions what changed.
	r := New(e, Config{MaxFullFraction: 1e-9})
	defer r.Close()

	sub, err := r.Subscribe("bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	state := recv(t, sub).Apply(nil)

	apply(t, e, "bib.xml", engine.Mutation{
		Op: engine.MutationInsert, Path: "/", XML: `<book><title>New</title></book>`,
	})
	d := recv(t, sub)
	if !d.Full || d.Reason != "dirty-region-threshold" {
		t.Fatalf("threshold delta: %+v", d)
	}
	if len(d.Removed) != 0 || len(d.Added) != 1 {
		t.Fatalf("threshold full re-run did not produce a minimal delta: %+v", d)
	}
	state = d.Apply(state)
	if len(state) != 3 {
		t.Fatalf("state after threshold commit: %q", state)
	}
}

func TestIneligiblePlanAlwaysFull(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	defer r.Close()

	sub, err := r.Subscribe("bib.xml", `count(//book)`)
	if err != nil {
		t.Fatal(err)
	}
	state := recv(t, sub).Apply(nil)
	if len(state) != 1 || state[0] != "2" {
		t.Fatalf("initial count: %q", state)
	}

	apply(t, e, "bib.xml", engine.Mutation{
		Op: engine.MutationInsert, Path: "/", XML: `<book><title>X</title></book>`,
	})
	d := recv(t, sub)
	if !d.Full || d.Reason != "ineligible-plan" {
		t.Fatalf("ineligible delta: %+v", d)
	}
	state = d.Apply(state)
	if len(state) != 1 || state[0] != "3" {
		t.Fatalf("count after insert: %q", state)
	}
}

func TestPollSnapshotDeltasAndTimeout(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	defer r.Close()
	ctx := context.Background()

	res, err := r.Poll(ctx, "bib.xml", `//book/title`, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reset || res.Gen != 1 || len(res.Items) != 2 {
		t.Fatalf("snapshot poll: %+v", res)
	}
	state := res.Items

	// A current poller times out with no deltas.
	start := time.Now()
	res, err = r.Poll(ctx, "bib.xml", `//book/title`, res.Gen, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reset || len(res.Deltas) != 0 || res.Gen != 1 {
		t.Fatalf("timeout poll: %+v", res)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("poll returned before its wait elapsed")
	}

	// A waiting poll wakes on commit.
	type pollOut struct {
		res *PollResult
		err error
	}
	ch := make(chan pollOut, 1)
	go func() {
		res, err := r.Poll(ctx, "bib.xml", `//book/title`, 1, 5*time.Second)
		ch <- pollOut{res, err}
	}()
	time.Sleep(20 * time.Millisecond)
	apply(t, e, "bib.xml", engine.Mutation{
		Op: engine.MutationInsert, Path: "/", XML: `<book><title>Woken</title></book>`,
	})
	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Reset || len(out.res.Deltas) != 1 || out.res.Gen != 2 {
		t.Fatalf("woken poll: %+v", out.res)
	}
	for _, d := range out.res.Deltas {
		state = d.Apply(state)
	}
	if len(state) != 3 || state[2] != "<title>Woken</title>" {
		t.Fatalf("accumulated poll state: %q", state)
	}
}

func TestPollBehindRingResets(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{RingSize: 2})
	defer r.Close()
	ctx := context.Background()

	res, err := r.Poll(ctx, "bib.xml", `//book/title`, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Gen
	for i := 0; i < 5; i++ {
		apply(t, e, "bib.xml", engine.Mutation{
			Op: engine.MutationInsert, Path: "/", XML: `<book><title>T</title></book>`,
		})
	}
	// Wait for the worker to drain all five commits.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err = r.Poll(ctx, "bib.xml", `//book/title`, first+5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Gen >= first+5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A poller stuck at the pre-commit generation is behind the 2-deep
	// ring and must get a reset, not a gap.
	res, err = r.Poll(ctx, "bib.xml", `//book/title`, first, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reset || len(res.Items) != 7 {
		t.Fatalf("behind-ring poll: %+v", res)
	}
}

func TestSlowSubscriberEvicted(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{SubscriberBuffer: 1})
	defer r.Close()

	sub, err := r.Subscribe("bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	// The unread initial snapshot fills the 1-slot buffer; the first
	// undeliverable commit evicts the subscriber. Don't read until the
	// eviction is recorded — draining would make this consumer fast.
	apply(t, e, "bib.xml", engine.Mutation{
		Op: engine.MutationInsert, Path: "/", XML: `<book><title>T</title></book>`,
	})
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().EvictedSubscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := <-sub.Deltas(); !ok {
		t.Fatal("buffered snapshot lost on eviction")
	}
	if _, ok := <-sub.Deltas(); ok {
		t.Fatal("channel still open after eviction")
	}
	if !sub.Lagged() {
		t.Fatal("evicted subscription not marked lagged")
	}
}

func TestDocumentCloseEndsSubscriptions(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	defer r.Close()

	sub, err := r.Subscribe("bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	recv(t, sub)
	if err := e.Close("bib.xml"); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.Deltas():
		if ok {
			t.Fatal("got a delta after document close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription not closed after document close")
	}
	if sub.Lagged() {
		t.Fatal("close mistaken for lag")
	}
	if r.Stats().Queries != 0 {
		t.Fatal("query survived document close")
	}
}

func TestRegistryCloseDetaches(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	sub, err := r.Subscribe("bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	recv(t, sub)
	r.Close()
	r.Close() // idempotent
	if _, ok := <-sub.Deltas(); ok {
		t.Fatal("subscription open after registry close")
	}
	if _, err := r.Subscribe("bib.xml", `//book/title`); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close: %v", err)
	}
	// Mutating the engine after Close must not panic or deliver.
	apply(t, e, "bib.xml", engine.Mutation{
		Op: engine.MutationInsert, Path: "/", XML: `<book><title>T</title></book>`,
	})
}

func TestSubscribeErrors(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	defer r.Close()

	if _, err := r.Subscribe("missing.xml", `//book`); err == nil {
		t.Fatal("unknown document accepted")
	}
	if _, err := r.Subscribe("bib.xml", `//book[`); err == nil {
		t.Fatal("malformed query accepted")
	}
	if _, err := r.Subscribe("bib.xml", `doc("other.xml")//book`); !errors.Is(err, ErrNotWatchable) {
		t.Fatalf("cross-doc query: %v", err)
	}
}

func TestQueryCapEvictsIdle(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{MaxQueries: 2})
	defer r.Close()
	ctx := context.Background()

	// Two idle queries (registered via Poll, no subscribers)…
	if _, err := r.Poll(ctx, "bib.xml", `//book/title`, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Poll(ctx, "bib.xml", `//book/price`, 0, 0); err != nil {
		t.Fatal(err)
	}
	// …a third displaces one of them.
	if _, err := r.Poll(ctx, "bib.xml", `//book/author`, 0, 0); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Queries != 2 || s.EvictedQueries != 1 {
		t.Fatalf("stats after cap eviction: %+v", s)
	}

	// With both slots pinned by subscribers, a new query is refused.
	if _, err := r.Subscribe("bib.xml", `//book/author`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Subscribe("bib.xml", `//book/publisher`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Subscribe("bib.xml", `//book/title`); !errors.Is(err, ErrTooManyQueries) {
		t.Fatalf("over-cap subscribe: %v", err)
	}
}

func TestCommitTraceRecorded(t *testing.T) {
	e := newBibEngine(t)
	r := New(e, Config{})
	defer r.Close()

	sub, err := r.Subscribe("bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	recv(t, sub)
	apply(t, e, "bib.xml", engine.Mutation{
		Op: engine.MutationInsert, Path: "/", XML: `<book><title>T</title></book>`,
	})
	recv(t, sub)
	span := r.CommitTrace("bib.xml")
	if span == nil || len(span.Children) != 1 {
		t.Fatalf("commit trace missing: %+v", span)
	}
	if !strings.Contains(span.Children[0].Label, "incremental") {
		t.Fatalf("trace child label: %q", span.Children[0].Label)
	}
}

func TestDeltaApplyAlgebra(t *testing.T) {
	prev := []string{"a", "b", "c", "d"}
	d := Delta{
		Removed: []int{1, 3},
		Added:   []AddedItem{{Index: 0, XML: "x"}, {Index: 3, XML: "y"}},
	}
	got := d.Apply(prev)
	want := []string{"x", "a", "c", "y"}
	if len(got) != len(want) {
		t.Fatalf("Apply = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Apply = %q, want %q", got, want)
		}
	}
	empty := Delta{}
	if !empty.Empty() {
		t.Fatal("zero delta not empty")
	}
	if d.Empty() {
		t.Fatal("non-empty delta reported empty")
	}
}

func TestDiffLCSMinimal(t *testing.T) {
	mk := func(xs ...string) []item {
		out := make([]item, len(xs))
		for i, x := range xs {
			out[i] = item{ref: storage.NodeRef(-1), xml: x, orig: -1}
		}
		return out
	}
	old := mk("a", "b", "c")
	next := mk("a", "x", "c", "d")
	removed, added := diffLCS(old, next)
	if len(removed) != 1 || removed[0] != 1 {
		t.Fatalf("removed = %v", removed)
	}
	if len(added) != 2 || added[0].Index != 1 || added[0].XML != "x" || added[1].Index != 3 {
		t.Fatalf("added = %v", added)
	}
	// Round-trip through Apply.
	d := Delta{Removed: removed, Added: added}
	got := d.Apply([]string{"a", "b", "c"})
	want := []string{"a", "x", "c", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round trip = %q, want %q", got, want)
		}
	}
}
