package cq

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xqp/internal/compile"
	"xqp/internal/engine"
	"xqp/internal/exec"
)

// freshResult evaluates the query from scratch against the document's
// current snapshot — the ground truth every accumulated delta state
// must be byte-identical to.
func freshResult(t testing.TB, e *engine.Engine, doc, src string, strat exec.Strategy) []string {
	t.Helper()
	st, syn, _, err := e.Snapshot(doc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile.Compile(src, compile.Options{}, st, syn)
	if err != nil {
		t.Fatal(err)
	}
	items, err := fullEval(doc, st, c.Plan, strat, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.xml
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// genDoc builds a bib document with n books, each with exactly one
// title, one price, and one author (the mutation generator preserves
// that shape so paths stay resolvable).
func genDoc(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<book year="%d"><title>seed-%d</title><author><last>L%d</last></author><price>%d</price></book>`,
			1990+rng.Intn(20), i, rng.Intn(50), 10+rng.Intn(140))
	}
	b.WriteString("</bib>")
	return b.String()
}

// randomMutation produces one valid mutation batch against a document
// that currently has *books element children of <bib>, updating the
// count. Each batch is one commit.
func randomMutation(rng *rand.Rand, seq int, books *int) []engine.Mutation {
	switch op := rng.Intn(10); {
	case op < 4 || *books <= 1: // insert a new book
		*books++
		return []engine.Mutation{{
			Op: engine.MutationInsert, Path: "/",
			XML: fmt.Sprintf(`<book year="%d"><title>new-%d</title><author><last>N%d</last></author><price>%d</price></book>`,
				1990+rng.Intn(20), seq, rng.Intn(50), 10+rng.Intn(140)),
		}}
	case op < 6: // delete a random book
		k := 1 + rng.Intn(*books)
		*books--
		return []engine.Mutation{{Op: engine.MutationDelete, Path: fmt.Sprintf("/book[%d]", k)}}
	case op < 8: // reprice a random book (may flip price predicates)
		k := 1 + rng.Intn(*books)
		return []engine.Mutation{
			{Op: engine.MutationDelete, Path: fmt.Sprintf("/book[%d]/price", k)},
			{Op: engine.MutationInsert, Path: fmt.Sprintf("/book[%d]", k),
				XML: fmt.Sprintf(`<price>%d</price>`, 10+rng.Intn(140))},
		}
	default: // add an author to a random book
		k := 1 + rng.Intn(*books)
		return []engine.Mutation{{
			Op: engine.MutationInsert, Path: fmt.Sprintf("/book[%d]", k),
			XML: fmt.Sprintf(`<author><last>A%d</last></author>`, seq),
		}}
	}
}

// TestDifferentialIncrementalVsFull drives random mutation sequences
// and checks, after every commit and for every watched query, that the
// state accumulated purely from deltas is byte-identical to a fresh
// from-scratch evaluation of the new snapshot. Configurations cover the
// incremental path, the threshold-full ref-join path, and multiple
// physical strategies for the full re-runs.
func TestDifferentialIncrementalVsFull(t *testing.T) {
	queries := []string{
		`//book/title`,
		`/bib/book[price < 80]/title`,
		`//book[price < 80]`,
		`//author/last`,
		`count(//book)`, // ineligible: always full, exercises diffLCS
	}
	configs := []Config{
		{Strategy: exec.StrategyAuto},                             // default 25% region cap
		{Strategy: exec.StrategyNoK, MaxFullFraction: 1.0},        // incremental whenever tracked
		{Strategy: exec.StrategyTwigStack, MaxFullFraction: 1e-9}, // always threshold-full (ref-join diff)
	}
	const steps = 40

	for ci, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("config%d_%s", ci, cfg.Strategy), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + ci)))
			e := engine.New(engine.Config{})
			books := 6
			if err := e.Register("bib.xml", strings.NewReader(genDoc(rng, books))); err != nil {
				t.Fatal(err)
			}
			r := New(e, cfg)
			defer r.Close()

			subs := make([]*Subscription, len(queries))
			states := make([][]string, len(queries))
			for i, src := range queries {
				sub, err := r.Subscribe("bib.xml", src)
				if err != nil {
					t.Fatalf("subscribe %q: %v", src, err)
				}
				subs[i] = sub
				states[i] = recv(t, sub).Apply(nil)
				if want := freshResult(t, e, "bib.xml", src, cfg.Strategy); !sameStrings(states[i], want) {
					t.Fatalf("initial state for %q:\n got %q\nwant %q", src, states[i], want)
				}
			}

			for step := 0; step < steps; step++ {
				muts := randomMutation(rng, step, &books)
				if _, err := e.Apply("bib.xml", muts); err != nil {
					t.Fatalf("step %d (%+v): %v", step, muts, err)
				}
				// Every commit yields exactly one delta per subscriber, so the
				// receive is the synchronization point.
				for i, src := range queries {
					d := recv(t, subs[i])
					states[i] = d.Apply(states[i])
					if d.Size != len(states[i]) {
						t.Fatalf("step %d %q: delta Size %d but accumulated %d items",
							step, src, d.Size, len(states[i]))
					}
					want := freshResult(t, e, "bib.xml", src, cfg.Strategy)
					if !sameStrings(states[i], want) {
						t.Fatalf("step %d %q (delta full=%v reason=%q):\n got %q\nwant %q",
							step, src, d.Full, d.Reason, states[i], want)
					}
				}
			}

			s := r.Stats()
			t.Logf("config %d: commits=%d incremental=%d full=%d byReason=%v",
				ci, s.Commits, s.Incremental, s.FullRuns, s.FullByReason)
			if cfg.MaxFullFraction == 1.0 && s.Incremental == 0 {
				t.Fatal("permissive config never took the incremental path")
			}
			if cfg.MaxFullFraction == 1e-9 && s.FullByReason["dirty-region-threshold"] == 0 {
				t.Fatal("restrictive config never hit the threshold fallback")
			}
		})
	}
}
