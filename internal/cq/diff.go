package cq

import (
	"fmt"

	"xqp/internal/storage"
)

// AddedItem is one insertion in a Delta: XML appears at position Index
// of the result sequence after the delta is applied.
type AddedItem struct {
	// Index is the item's position in the post-delta sequence.
	Index int `json:"index"`
	// XML is the serialized item (subtree XML for nodes, string value
	// for atomics), matching the facade's Result.XMLItems serialization.
	XML string `json:"xml"`
}

// Delta is one commit's effect on a watched query's result: remove the
// listed positions from the previous sequence, then insert the added
// items at their final positions. Every processed commit produces a
// Delta — possibly with no removals or additions — so generations are
// contiguous and a subscriber can detect missed commits by gap.
type Delta struct {
	// Doc and Gen identify the commit: the document and the generation
	// whose result this delta produces.
	Doc string `json:"doc"`
	Gen uint64 `json:"gen"`
	// Removed lists positions in the pre-delta sequence to delete,
	// ascending. Added lists insertions at post-delta positions,
	// ascending (see Apply for the exact algebra).
	Removed []int       `json:"removed,omitempty"`
	Added   []AddedItem `json:"added,omitempty"`
	// Size is the result size after applying the delta (lets clients
	// cross-check accumulated state).
	Size int `json:"size"`
	// Full reports the commit was served by a full re-evaluation rather
	// than the incremental dirty-region path; Reason says why ("initial",
	// "untracked-commit", "ineligible-plan", "root-qualifying",
	// "dirty-region-threshold", "missed-commit").
	Full   bool   `json:"full,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Latency is commit-to-publication time: from the engine's commit
	// notification to this delta being handed to subscribers.
	Latency int64 `json:"latency_ns"`
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Removed) == 0 && len(d.Added) == 0 }

// Apply transforms a result sequence: it removes Removed positions from
// prev, then inserts each added item at its Index in the growing final
// sequence (ascending order). Accumulating deltas this way from any
// starting generation reproduces the query's current result exactly —
// the differential tests assert byte identity against a fresh
// evaluation.
//
// Apply panics on a malformed delta; state received over the wire must
// go through ApplyChecked instead.
func (d Delta) Apply(prev []string) []string {
	out, err := d.ApplyChecked(prev)
	if err != nil {
		panic(err)
	}
	return out
}

// ApplyChecked is Apply with validation: a delta whose Removed positions
// are out of range or not strictly ascending, or whose Added indexes
// fall outside the growing output sequence, returns an error instead of
// panicking. Use it for deltas of untrusted provenance (anything
// deserialized from the network), where a truncated or corrupt payload
// must degrade to a reportable error, not crash the consumer.
func (d Delta) ApplyChecked(prev []string) ([]string, error) {
	for i, r := range d.Removed {
		if r < 0 || r >= len(prev) {
			return nil, fmt.Errorf("cq: delta gen %d: removed position %d out of range for %d-item state", d.Gen, r, len(prev))
		}
		if i > 0 && r <= d.Removed[i-1] {
			return nil, fmt.Errorf("cq: delta gen %d: removed positions not strictly ascending at %d", d.Gen, r)
		}
	}
	// cap is a hint only, but guard it anyway: with invalid inputs the
	// arithmetic can go negative and make() panics.
	capHint := len(prev) - len(d.Removed) + len(d.Added)
	if capHint < 0 {
		capHint = 0
	}
	out := make([]string, 0, capHint)
	ri := 0
	for i, s := range prev {
		if ri < len(d.Removed) && d.Removed[ri] == i {
			ri++
			continue
		}
		out = append(out, s)
	}
	for _, a := range d.Added {
		// After appending the placeholder, valid insertion points are
		// 0..len(out)-1 (i.e. at most one past the pre-insert end).
		if a.Index < 0 || a.Index > len(out) {
			return nil, fmt.Errorf("cq: delta gen %d: added index %d out of range for %d-item state", d.Gen, a.Index, len(out))
		}
		out = append(out, "")
		if a.Index < len(out)-1 {
			copy(out[a.Index+1:], out[a.Index:])
		}
		out[a.Index] = a.XML
	}
	return out, nil
}

// item is one entry of a query's retained result state.
type item struct {
	// ref is the node's ref in the state's store generation (-1 for
	// atomic items, which have no node identity).
	ref storage.NodeRef
	// xml is the item's serialization, retained across commits for
	// untouched subtrees so kept items never re-serialize.
	xml string
	// orig is the item's position in the pre-commit state while a commit
	// is being processed (-1 for items added during the commit); used to
	// emit positional deltas without re-diffing.
	orig int
}

// diffByOrig produces a delta body from origin annotations: next items
// carrying an orig position with unchanged serialization are kept,
// everything else is removed/added. Requires survivors to preserve
// relative order (true for ref-sorted results under monotonic remaps).
// An origin outside old's bounds is treated as no origin (the item
// degrades to remove+add): a bad annotation must never index out of
// range and panic the registry worker, which would silently kill all
// watch delivery for the document.
func diffByOrig(old, next []item) (removed []int, added []AddedItem) {
	kept := make([]bool, len(old))
	for j := range next {
		if o := next[j].orig; o >= 0 && o < len(old) && next[j].xml == old[o].xml {
			kept[o] = true
		} else {
			added = append(added, AddedItem{Index: j, XML: next[j].xml})
		}
	}
	for i := range old {
		if !kept[i] {
			removed = append(removed, i)
		}
	}
	return removed, added
}

// lcsCellCap bounds the LCS table; beyond it the diff degrades to a
// wholesale replacement (correct, just not minimal).
const lcsCellCap = 1 << 20

// diffLCS produces a minimal delta body by longest-common-subsequence
// over serializations — the fallback when node identity cannot be
// tracked across stores (untracked commits, atomic results). Equal
// prefixes and suffixes are trimmed before anything else, so the
// quadratic table — and the lcsCellCap wholesale-replacement fallback —
// sees only the changed middle: a large, mostly unchanged result no
// longer degrades to a remove-all/add-all delta just because its total
// size crosses the cap.
func diffLCS(old, next []item) (removed []int, added []AddedItem) {
	// Trim the common prefix (offset by p below) and suffix: unchanged
	// runs contribute nothing to the delta and must not count against
	// lcsCellCap.
	p := 0
	for p < len(old) && p < len(next) && old[p].xml == next[p].xml {
		p++
	}
	suf := 0
	for suf < len(old)-p && suf < len(next)-p && old[len(old)-1-suf].xml == next[len(next)-1-suf].xml {
		suf++
	}
	old, next = old[p:len(old)-suf], next[p:len(next)-suf]
	n, m := len(old), len(next)
	if n == 0 && m == 0 {
		return nil, nil
	}
	if n*m > lcsCellCap {
		for i := 0; i < n; i++ {
			removed = append(removed, i+p)
		}
		for j := 0; j < m; j++ {
			added = append(added, AddedItem{Index: j + p, XML: next[j].xml})
		}
		return removed, added
	}
	// lcs[i][j] = LCS length of old[i:], next[j:].
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if old[i].xml == next[j].xml {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case old[i].xml == next[j].xml:
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			removed = append(removed, i+p)
			i++
		default:
			added = append(added, AddedItem{Index: j + p, XML: next[j].xml})
			j++
		}
	}
	for ; i < n; i++ {
		removed = append(removed, i+p)
	}
	for ; j < m; j++ {
		added = append(added, AddedItem{Index: j + p, XML: next[j].xml})
	}
	return removed, added
}
