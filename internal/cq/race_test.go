package cq

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"xqp/internal/engine"
)

// TestRaceHammer runs concurrent writers (Apply and Append across two
// documents), subscribers accumulating deltas, and long-poll clients
// against one registry. It asserts — under -race — that each
// subscriber sees a gapless, strictly increasing generation sequence
// (no stale or duplicated deltas) and that every accumulated state
// matches a fresh evaluation at the final generation.
func TestRaceHammer(t *testing.T) {
	const (
		writersPerDoc  = 2
		commitsPerGoro = 25
		pollClients    = 2
	)
	docs := []string{"a.xml", "b.xml"}
	queries := []string{`//book/title`, `/bib/book[price < 80]/title`}

	e := engine.New(engine.Config{})
	for _, doc := range docs {
		rng := rand.New(rand.NewSource(7))
		if err := e.Register(doc, strings.NewReader(genDoc(rng, 4))); err != nil {
			t.Fatal(err)
		}
	}
	// Buffers big enough that no subscriber is evicted for lag: the
	// hammer asserts completeness, not backpressure.
	r := New(e, Config{SubscriberBuffer: 4 * writersPerDoc * commitsPerGoro})
	defer r.Close()

	finalGen := uint64(1 + writersPerDoc*commitsPerGoro)

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Subscribers: one per (doc, query), attached before writes begin.
	for _, doc := range docs {
		for _, src := range queries {
			sub, err := r.Subscribe(doc, src)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(doc, src string, sub *Subscription) {
				defer wg.Done()
				var state []string
				var gen uint64
				first := true
				for d := range sub.Deltas() {
					if first {
						if !d.Full || d.Reason != "initial" {
							fail("%s %q: first delta not a snapshot: %+v", doc, src, d)
							return
						}
						first = false
					} else if d.Gen != gen+1 {
						fail("%s %q: generation gap: %d after %d", doc, src, d.Gen, gen)
						return
					}
					gen = d.Gen
					state = d.Apply(state)
					if d.Doc != doc {
						fail("%s %q: delta for wrong doc %q", doc, src, d.Doc)
						return
					}
					if d.Gen == finalGen {
						want := freshResult(t, e, doc, src, 0)
						if !sameStrings(state, want) {
							fail("%s %q: final state mismatch\n got %q\nwant %q", doc, src, state, want)
						}
						return
					}
				}
				fail("%s %q: channel closed at gen %d before final gen %d", doc, src, gen, finalGen)
			}(doc, src, sub)
		}
	}

	// Writers: concurrent Apply/Append per document. Inserts only, so
	// paths never race with concurrent deletes.
	for _, doc := range docs {
		for w := 0; w < writersPerDoc; w++ {
			wg.Add(1)
			go func(doc string, w int) {
				defer wg.Done()
				for i := 0; i < commitsPerGoro; i++ {
					xml := fmt.Sprintf(`<book><title>w%d-%d</title><price>%d</price></book>`, w, i, 10+(i*7)%140)
					var err error
					if i%2 == 0 {
						_, err = e.Apply(doc, []engine.Mutation{{Op: engine.MutationInsert, Path: "/", XML: xml}})
					} else {
						_, err = e.Append(doc, strings.NewReader(xml))
					}
					if err != nil {
						fail("writer %s/%d commit %d: %v", doc, w, i, err)
						return
					}
				}
			}(doc, w)
		}
	}

	// Long-poll clients churning alongside the writers.
	ctx := context.Background()
	for p := 0; p < pollClients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			doc, src := docs[p%len(docs)], queries[p%len(queries)]
			var state []string
			var gen uint64
			for {
				res, err := r.Poll(ctx, doc, src, gen, 50*time.Millisecond)
				if err != nil {
					fail("poll %s %q: %v", doc, src, err)
					return
				}
				if res.Reset {
					state, gen = res.Items, res.Gen
				} else {
					for _, d := range res.Deltas {
						if d.Gen != gen+1 {
							fail("poll %s %q: gap %d after %d", doc, src, d.Gen, gen)
							return
						}
						state = d.Apply(state)
						gen = d.Gen
					}
				}
				if gen >= finalGen {
					want := freshResult(t, e, doc, src, 0)
					if !sameStrings(state, want) {
						fail("poll %s %q: final state mismatch", doc, src)
					}
					return
				}
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer deadlocked")
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	s := r.Stats()
	if s.DroppedCommits != 0 {
		t.Fatalf("commits dropped under default queue depth: %+v", s)
	}
	wantCommits := int64(len(docs) * writersPerDoc * commitsPerGoro * len(queries))
	if s.Commits != wantCommits {
		t.Fatalf("processed %d query-commits, want %d", s.Commits, wantCommits)
	}
}
