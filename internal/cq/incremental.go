package cq

import (
	"fmt"
	"sort"
	"time"

	"xqp/internal/ast"
	"xqp/internal/core"
	"xqp/internal/cost"
	"xqp/internal/cost/calibrate"
	"xqp/internal/engine"
	"xqp/internal/exec"
	"xqp/internal/naive"
	"xqp/internal/pattern"
	"xqp/internal/stats"
	"xqp/internal/storage"
	"xqp/internal/tally"
	"xqp/internal/value"
	"xqp/internal/xmldoc"
)

// fallback enumerates why a commit was (or always will be) served by a
// full re-evaluation instead of the incremental dirty-region path.
type fallback uint8

const (
	fbNone fallback = iota
	// fbInitial: the query's first evaluation at registration.
	fbInitial
	// fbIneligible: the plan is not a single rooted τ over the watched
	// document (FLWOR, step-by-step paths, constructed results).
	fbIneligible
	// fbRootQualifying: the pattern root itself carries predicates or
	// branches, so any edit can flip every output at once.
	fbRootQualifying
	// fbUntracked: the commit carried no mutation records (document
	// replaced wholesale or updated through an opaque closure).
	fbUntracked
	// fbMissed: a generation gap — a commit notification was dropped, so
	// retained state cannot be advanced record-by-record.
	fbMissed
	// fbThreshold: the dirty candidate region exceeded the configured
	// fraction of the document; a full scan is cheaper than re-matching
	// region by region.
	fbThreshold
	// fbError: evaluation failed; state was kept and will heal on the
	// next commit via fbMissed.
	fbError
	fbCount
)

var fallbackNames = [fbCount]string{
	"", "initial", "ineligible-plan", "root-qualifying",
	"untracked-commit", "missed-commit", "dirty-region-threshold",
	"eval-error",
}

func (f fallback) String() string { return fallbackNames[f] }

// unboundedDepth stands in for an unbounded depth window limit
// (descendant edges).
const unboundedDepth = 1 << 30

// qualVertex is a root→output path vertex whose sub-pattern (branch
// children or value predicates) can flip output membership when content
// below one of its images changes, together with the depth window its
// images must occupy.
type qualVertex struct {
	v        *pattern.Vertex
	minDepth int
	maxDepth int
}

// incPlan is the per-query incremental re-evaluation plan: the pattern
// graph plus the qualifying-vertex analysis that bounds each edit's
// dirty region.
type incPlan struct {
	graph *pattern.Graph
	quals []qualVertex
}

// incrementalPlan derives an incPlan from a compiled plan, or reports
// the structural fallback that makes the query full-only.
func incrementalPlan(op core.Op) (*incPlan, fallback) {
	t, ok := op.(*core.TPMOp)
	if !ok {
		return nil, fbIneligible
	}
	d, ok := t.Input.(*core.DocOp)
	if !ok || d.URI != "" {
		return nil, fbIneligible
	}
	if !t.Graph.Rooted {
		return nil, fbIneligible
	}
	return analyzeGraph(t.Graph)
}

// analyzeGraph extracts the root→output path and its qualifying
// vertices with depth windows. The pattern root must be plain (no
// predicates, single child): a qualifying root means one edit can flip
// membership of every output in the document, so there is no useful
// region to restrict to.
func analyzeGraph(g *pattern.Graph) (*incPlan, fallback) {
	if len(g.Vertices[0].Preds) > 0 || len(g.Children[0]) > 1 {
		return nil, fbRootQualifying
	}
	// Path from output up to the root, then reversed; rels[i] is the
	// relation on the edge into path[i].
	var path []pattern.VertexID
	var rels []pattern.Rel
	for v := g.Output; v != 0; {
		p, rel := g.Parent(v)
		if p < 0 {
			return nil, fbIneligible // disconnected output; defensive
		}
		path = append(path, v)
		rels = append(rels, rel)
		v = p
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
		rels[i], rels[j] = rels[j], rels[i]
	}
	plan := &incPlan{graph: g}
	lo, hi := 0, 0
	for i, v := range path {
		lo++
		if rels[i] == pattern.RelDescendant || hi >= unboundedDepth {
			hi = unboundedDepth
		} else {
			hi++
		}
		if v == g.Output {
			// Flips at the output vertex itself are witnessed inside the
			// edit parent's subtree, so its images are always among the
			// re-checked ancestors — no scope lift needed.
			continue
		}
		vert := &g.Vertices[v]
		if len(vert.Preds) > 0 || len(g.Children[v]) > 1 {
			plan.quals = append(plan.quals, qualVertex{v: vert, minDepth: lo, maxDepth: hi})
		}
	}
	return plan, fbNone
}

// vertexTestMatches is pattern.MatchesVertex with value predicates
// stripped: the scope lift must match by label alone, because a
// predicate that currently fails is exactly what an edit may flip.
func vertexTestMatches(st *storage.Store, n storage.NodeRef, v *pattern.Vertex) bool {
	switch {
	case v.Attribute:
		return st.Kind(n) == xmldoc.KindAttribute && (v.Test.Name == "*" || st.Name(n) == v.Test.Name)
	case v.Test.Kind == ast.TestName:
		return st.Kind(n) == xmldoc.KindElement && (v.Test.Name == "*" || st.Name(n) == v.Test.Name)
	default:
		return pattern.MatchesKindTest(st, n, v.Test)
	}
}

// scopeLift returns the shallowest ancestor-or-self of the edit parent
// that could serve as an image of a qualifying vertex (label match
// inside the vertex's depth window), or -1 when no ancestor qualifies.
// Outputs outside the lifted subtree cannot change membership: every
// predicate or branch witness they depend on lies outside the edited
// region.
func (p *incPlan) scopeLift(st *storage.Store, par storage.NodeRef) storage.NodeRef {
	if len(p.quals) == 0 || par <= 0 {
		return -1
	}
	var chain []storage.NodeRef // par up to (excluding) the document node
	for a := par; a > 0; a = st.Parent(a) {
		chain = append(chain, a)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		a := chain[i]
		d := len(chain) - i // depth: document node is 0, its element 1
		for _, q := range p.quals {
			if d >= q.minDepth && d <= q.maxDepth && vertexTestMatches(st, a, q.v) {
				return a
			}
		}
	}
	return -1
}

// interval is a half-open node-ref range [lo, hi).
type interval struct{ lo, hi storage.NodeRef }

// mergeIntervals sorts and coalesces overlapping intervals, returning
// the merged list and the total node count it covers.
func mergeIntervals(ivs []interval) ([]interval, int) {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:0]
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.lo <= out[n-1].hi {
			if iv.hi > out[n-1].hi {
				out[n-1].hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	count := 0
	for _, iv := range out {
		count += int(iv.hi - iv.lo)
	}
	return out, count
}

// rematcher prices continuous-query re-matches with the cost model and
// feeds their dispatch records to the engine's calibrator, so cq
// traffic tunes the chooser exactly like ad-hoc queries do. The model
// is built from the commit's snapshot synopsis; cal is the watched
// document's calibrator (nil when the engine runs with calibration
// disabled — dispatches then still run, just unrecorded and untuned).
type rematcher struct {
	st    *storage.Store
	model *cost.Model
	cal   *calibrate.Calibrator
}

// newRematcher builds the dispatcher for one snapshot of doc. Any of
// the inputs may be missing (nil synopsis on untracked replacements,
// nil engine in direct tests); the zero pieces degrade gracefully down
// to the plain naive walk.
func newRematcher(doc string, st *storage.Store, syn *stats.Synopsis, eng *engine.Engine) *rematcher {
	rm := &rematcher{st: st}
	if st != nil && syn != nil {
		rm.model = cost.NewModelWith(st, syn)
	}
	if eng != nil {
		rm.cal = eng.Calibrator(doc)
	}
	return rm
}

// chosenEstimate picks the modeled cost of the choice's strategy family
// out of its estimate (which the caller has checked is non-nil).
func chosenEstimate(ch exec.Choice) float64 {
	switch ch.Strategy {
	case exec.StrategyTwigStack, exec.StrategyPathStack:
		return ch.Estimate.Join
	case exec.StrategyHybrid:
		return ch.Estimate.Hybrid
	default:
		return ch.Estimate.NoK
	}
}

// rematch re-tests the dirty candidates: the cost model prices the
// region-restricted naive walk (WithinCost) against a full re-match by
// its chosen strategy and runs the cheaper. Verdicts are
// strategy-independent — a full match filtered to the candidates equals
// the region-restricted walk by construction — so the dispatch affects
// cost only, never results. Either way a StrategyRecord flows into the
// calibrator: the walk's record carries the within estimate it was
// priced on plus counted actual work, and the full path runs through
// exec, which emits its record like any other τ dispatch.
func (rm *rematcher) rematch(doc string, st *storage.Store, plan core.Op, g *pattern.Graph, cands []storage.NodeRef) ([]storage.NodeRef, error) {
	if rm == nil || rm.model == nil {
		return naive.MatchOutputWithin(st, g, []storage.NodeRef{0}, cands)
	}
	var tuner cost.Tuner
	if rm.cal != nil {
		tuner = rm.cal
	}
	ch := rm.model.ChoiceTuned(g, true, 0, tuner)
	within := rm.model.WithinCost(g, len(cands))
	if ch.Estimate == nil || within <= chosenEstimate(ch) {
		var c tally.Counters
		start := time.Now()
		out, err := naive.MatchOutputWithinCounted(st, g, []storage.NodeRef{0}, cands, &c)
		if err != nil {
			return nil, err
		}
		if rm.cal != nil {
			rm.cal.Observe(g, &exec.StrategyRecord{
				Chosen:   exec.StrategyNaive,
				Executed: exec.StrategyNaive,
				Estimate: &exec.CostEstimate{NoK: within},
				Contexts: 1,
				Matches:  len(out),
				Actual:   c,
				Dur:      time.Since(start),
			})
		}
		return out, nil
	}
	// Full re-match by the model's choice, filtered to the candidates.
	// The estimator only answers for the snapshot the model was built on
	// (intermediate stores of a multi-record commit get no estimate, so
	// the calibrator is never fed a mispriced one).
	eo := exec.Options{Strategy: ch.Strategy, StrictDocs: true}
	eo.Estimator = func(cs *storage.Store, gg *pattern.Graph) *exec.CostEstimate {
		if cs != rm.st {
			return nil
		}
		return rm.model.Estimate(gg).ForExec()
	}
	if cal := rm.cal; cal != nil {
		eo.Record = func(_ *storage.Store, gg *pattern.Graph, rec *exec.StrategyRecord) {
			cal.Observe(gg, rec)
		}
	}
	ex := exec.New(st, eo)
	ex.AddDocument(doc, st)
	seq, err := ex.Eval(plan, exec.Root())
	if err != nil {
		return nil, err
	}
	want := make(map[storage.NodeRef]bool, len(cands))
	for _, r := range cands {
		want[r] = true
	}
	var out []storage.NodeRef
	for _, it := range seq {
		if n, ok := it.(value.Node); ok && n.Store == st && want[n.Ref] {
			out = append(out, n.Ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// step advances retained result state across one mutation record: remap
// refs through the edit point, re-match only the dirty candidate region
// (edit ancestors ∪ inserted interval ∪ lifted subtree), and splice the
// fresh matches over the dropped ones. The re-match dispatches through
// rm (cost-priced and fed to calibration); doc and plan identify the
// query in case the model prefers a full re-match. Returns false when
// the candidate region exceeds maxCand or the re-match fails — the
// caller falls back to a full re-run.
func (p *incPlan) step(rec engine.MutationRecord, items []item, maxCand int, doc string, plan core.Op, rm *rematcher) ([]item, bool) {
	st := rec.After
	ins, del := rec.Stats.NodesInserted, rec.Stats.NodesDeleted
	ep := rec.Stats.EditPoint

	// 1. Remap retained refs into the new store's space; refs inside a
	// deleted interval drop out of the result here.
	remapped := make([]item, 0, len(items))
	for _, it := range items {
		r := it.ref
		switch {
		case r < ep:
			// stable
		case del > 0 && r < ep+storage.NodeRef(del):
			continue
		default:
			r += storage.NodeRef(ins - del)
		}
		remapped = append(remapped, item{ref: r, xml: it.xml, orig: it.orig})
	}

	// 2. The dirty candidate region. Ancestors-or-self of the edit
	// parent are always re-checked: their string values and branch
	// witnesses may have changed, and their serializations certainly
	// have. Inserted nodes are all new candidates. The scope lift covers
	// outputs deeper in the tree whose qualifying ancestor's predicate
	// may have flipped.
	ivs := []interval{}
	for a := rec.Stats.Parent; ; a = st.Parent(a) {
		ivs = append(ivs, interval{a, a + 1})
		if a <= 0 {
			break
		}
	}
	if ins > 0 {
		ivs = append(ivs, interval{ep, ep + storage.NodeRef(ins)})
	}
	if a := p.scopeLift(st, rec.Stats.Parent); a >= 0 {
		ivs = append(ivs, interval{a, a + storage.NodeRef(st.SubtreeSize(a))})
	}
	merged, count := mergeIntervals(ivs)
	if count > maxCand {
		return nil, false
	}

	// 3. Re-match just the candidates through the cost-priced dispatcher
	// (its verdicts agree with a full scan by construction, whichever
	// strategy the model picks).
	cands := make([]storage.NodeRef, 0, count)
	for _, iv := range merged {
		for r := iv.lo; r < iv.hi; r++ {
			cands = append(cands, r)
		}
	}
	matched, err := rm.rematch(doc, st, plan, p.graph, cands)
	if err != nil {
		return nil, false
	}

	// 4. Splice: retained items inside the candidate region give way to
	// the fresh matches; a re-matched ref keeps its origin position so
	// the delta can recognize it as unchanged.
	inRegion := func(r storage.NodeRef) bool {
		i := sort.Search(len(merged), func(i int) bool { return merged[i].hi > r })
		return i < len(merged) && merged[i].lo <= r
	}
	dropped := map[storage.NodeRef]int{}
	var kept []item
	for _, it := range remapped {
		if it.ref >= 0 && inRegion(it.ref) {
			dropped[it.ref] = it.orig
			continue
		}
		kept = append(kept, it)
	}
	fresh := make([]item, len(matched))
	for i, r := range matched {
		orig := -1
		if o, ok := dropped[r]; ok {
			orig = o
		}
		fresh[i] = item{ref: r, xml: nodeXML(st, r), orig: orig}
	}
	return mergeByRef(kept, fresh), true
}

// mergeByRef merges two ref-sorted item slices (disjoint refs).
func mergeByRef(a, b []item) []item {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]item, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].ref < b[j].ref {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// remapItems pushes pre-commit item refs through every mutation record
// of a commit (used when a threshold fallback still wants positional
// origin tracking: the full re-evaluation's matches are joined back to
// old positions by ref). Deleted items are dropped.
func remapItems(items []item, recs []engine.MutationRecord) []item {
	out := items
	for _, rec := range recs {
		ins, del := rec.Stats.NodesInserted, rec.Stats.NodesDeleted
		ep := rec.Stats.EditPoint
		next := make([]item, 0, len(out))
		for _, it := range out {
			r := it.ref
			switch {
			case r < ep:
			case del > 0 && r < ep+storage.NodeRef(del):
				continue
			default:
				r += storage.NodeRef(ins - del)
			}
			next = append(next, item{ref: r, xml: it.xml, orig: it.orig})
		}
		out = next
	}
	return out
}

// assignOrigins joins next (fresh full evaluation, ref-sorted) against
// old (remapped pre-commit state, ref-sorted) by ref, copying origin
// positions onto surviving items so diffByOrig emits a minimal delta.
func assignOrigins(old, next []item) {
	i := 0
	for j := range next {
		for i < len(old) && old[i].ref < next[j].ref {
			i++
		}
		if i < len(old) && old[i].ref == next[j].ref {
			next[j].orig = old[i].orig
		}
	}
}

// nodeXML serializes one node the same way the xqp facade's
// Result.XMLItems does: attributes as name="value", everything else as
// subtree XML. Byte-identical serialization is what the differential
// tests compare against.
func nodeXML(st *storage.Store, r storage.NodeRef) string {
	if st.Kind(r) == xmldoc.KindAttribute {
		return fmt.Sprintf(`%s="%s"`, st.Name(r), st.Content(r))
	}
	return st.XMLString(r)
}

// fullEval runs the compiled plan from scratch against a snapshot and
// serializes the result. Node items of the watched store carry their
// ref so later deltas can track them; atoms and constructed nodes do
// not (ref -1). When rm carries a model and calibrator, every τ
// dispatch of the run is estimated and recorded into calibration.
func fullEval(doc string, st *storage.Store, plan core.Op, strat exec.Strategy, rm *rematcher) ([]item, error) {
	eo := exec.Options{Strategy: strat, StrictDocs: true}
	if rm != nil && rm.model != nil {
		eo.Estimator = func(cs *storage.Store, g *pattern.Graph) *exec.CostEstimate {
			if cs != rm.st {
				return nil
			}
			return rm.model.Estimate(g).ForExec()
		}
	}
	if rm != nil && rm.cal != nil {
		cal := rm.cal
		eo.Record = func(_ *storage.Store, g *pattern.Graph, rec *exec.StrategyRecord) {
			cal.Observe(g, rec)
		}
	}
	ex := exec.New(st, eo)
	ex.AddDocument(doc, st)
	seq, err := ex.Eval(plan, exec.Root())
	if err != nil {
		return nil, err
	}
	items := make([]item, len(seq))
	for i, it := range seq {
		if n, ok := it.(value.Node); ok && n.Store == st {
			items[i] = item{ref: n.Ref, xml: nodeXML(st, n.Ref), orig: -1}
		} else {
			items[i] = item{ref: -1, xml: it.String(), orig: -1}
		}
	}
	return items, nil
}
