// Package cq implements continuous queries over the engine's document
// catalog: a registered query is re-evaluated after every commit and
// subscribers receive ordered add/remove deltas instead of full result
// sets.
//
// The pipeline is ingest → commit → notify → re-evaluate → diff →
// deliver. Commits arrive from the engine's commit notifier (already
// ordered per document) on a bounded queue drained by a single worker.
// For each watched query the worker first tries the incremental path:
// using the storage.UpdateStats of each mutation it remaps the retained
// result into the new store's ref space and re-matches only the dirty
// candidate region — the edit parent's ancestor chain, the inserted
// interval, and the subtree of the scope-lifted qualifying ancestor
// (see incremental.go). When the region exceeds a configured fraction
// of the document, the commit is untracked, or the plan is not a single
// rooted tree pattern, it falls back to a full re-run; either way the
// new result is diffed positionally against the retained one and the
// delta is fanned out to per-subscriber bounded buffers (slow consumers
// are evicted, long-poll clients replay a per-query delta ring).
package cq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xqp/internal/compile"
	"xqp/internal/core"
	"xqp/internal/engine"
	"xqp/internal/exec"
	"xqp/internal/storage"
)

// Registry errors, matchable with errors.Is.
var (
	// ErrClosed is returned by operations on a closed registry.
	ErrClosed = errors.New("cq: registry closed")
	// ErrTooManyQueries is returned when the query cap is reached and no
	// idle query can be evicted.
	ErrTooManyQueries = errors.New("cq: too many continuous queries")
	// ErrNotWatchable is returned for queries that cannot be watched
	// (cross-document doc() references).
	ErrNotWatchable = errors.New("cq: query not watchable")
)

// Config sizes the registry; the zero value gives sensible defaults.
type Config struct {
	// Strategy selects the physical τ strategy for full re-evaluations
	// (default auto). The incremental path always uses the navigational
	// oracle — its region-restricted verdicts are strategy-independent.
	Strategy exec.Strategy
	// MaxFullFraction is the dirty-candidate-region size, as a fraction
	// of the document's node count, above which a commit is served by a
	// full re-run instead of region re-matching (default 0.25).
	MaxFullFraction float64
	// RingSize is the number of recent deltas retained per query for
	// long-poll catch-up (default 64).
	RingSize int
	// SubscriberBuffer is the per-subscriber delta channel capacity; a
	// subscriber that falls this far behind is evicted (default 32).
	SubscriberBuffer int
	// MaxQueries caps registered continuous queries; at the cap an idle
	// (subscriber-less) query is evicted to make room (default 256).
	MaxQueries int
	// QueueDepth bounds the commit-notification queue between the
	// engine and the worker (default 1024). An overflowing commit is
	// dropped and counted; affected queries heal on the next commit via
	// the generation-gap check.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.MaxFullFraction <= 0 {
		c.MaxFullFraction = 0.25
	}
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 32
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	return c
}

// qkey identifies a continuous query: one per (document, query text).
type qkey struct{ doc, src string }

// queuedCommit is one commit notification with its enqueue time (the
// zero point for delta latency).
type queuedCommit struct {
	ev engine.CommitEvent
	at time.Time
}

// Registry is the continuous-query subsystem over one engine. Create
// with New; all methods are safe for concurrent use.
//
// Lock order: Registry.mu before query.mu. The engine's commit notifier
// only enqueues (it runs under the engine's per-document lock and must
// not call back), so no engine lock is ever held together with ours.
type Registry struct {
	eng    *engine.Engine
	cfg    Config
	mu     sync.Mutex
	qs     map[qkey]*query       // guarded by mu
	spans  map[string]*exec.Span // guarded by mu
	closed bool                  // guarded by mu
	events chan queuedCommit
	done   chan struct{}
	wg     sync.WaitGroup
	met    cqMetrics
}

// New returns a Registry wired into the engine's commit notifier and
// starts its delivery worker. Only one registry should be attached to
// an engine at a time (a later SetCommitNotifier replaces the hook).
func New(eng *engine.Engine, cfg Config) *Registry {
	r := &Registry{
		eng:    eng,
		cfg:    cfg.withDefaults(),
		qs:     map[qkey]*query{},
		spans:  map[string]*exec.Span{},
		events: make(chan queuedCommit, cfg.withDefaults().QueueDepth),
		done:   make(chan struct{}),
	}
	eng.SetCommitNotifier(r.enqueue)
	r.wg.Add(1)
	go r.worker()
	return r
}

// enqueue is the engine-side commit hook: it must only queue and
// return (it runs under the engine's per-document write lock).
func (r *Registry) enqueue(ev engine.CommitEvent) {
	select {
	case r.events <- queuedCommit{ev: ev, at: time.Now()}:
	default:
		r.met.dropped.Add(1)
	}
}

// Close detaches the registry from the engine, stops the worker, and
// closes every subscription. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	qs := make([]*query, 0, len(r.qs))
	for _, q := range r.qs {
		qs = append(qs, q)
	}
	r.qs = map[qkey]*query{}
	r.mu.Unlock()
	r.eng.SetCommitNotifier(nil)
	close(r.done)
	r.wg.Wait()
	for _, q := range qs {
		q.shutdown()
	}
}

func (r *Registry) worker() {
	defer r.wg.Done()
	for {
		select {
		case qc := <-r.events:
			r.handle(qc)
		case <-r.done:
			return
		}
	}
}

// handle delivers one commit to every query watching the document.
func (r *Registry) handle(qc queuedCommit) {
	ev := qc.ev
	r.mu.Lock()
	var qs []*query
	for k, q := range r.qs {
		if k.doc != ev.Doc {
			continue
		}
		if ev.Closed {
			delete(r.qs, k)
		}
		qs = append(qs, q)
	}
	r.mu.Unlock()
	if ev.Closed {
		for _, q := range qs {
			q.shutdown()
		}
		return
	}
	if len(qs) == 0 {
		return
	}
	span := &exec.Span{
		Label: fmt.Sprintf("cq commit %s gen %d (%d mutations)", ev.Doc, ev.Gen, len(ev.Records)),
		Calls: 1,
	}
	start := time.Now()
	// One dispatcher per commit: all of the document's queries share the
	// snapshot model and the engine's calibrator for this generation.
	rm := newRematcher(ev.Doc, ev.Store, ev.Syn, r.eng)
	for _, q := range qs {
		if child := q.processCommit(qc, &r.met, r.cfg, rm); child != nil {
			span.Children = append(span.Children, child)
			span.Out += child.Out
		}
	}
	span.Dur = time.Since(start)
	r.mu.Lock()
	r.spans[ev.Doc] = span
	r.mu.Unlock()
}

// CommitTrace returns the trace span of the most recent commit
// processed for the document (nil if none): one child per watched
// query, labeled with the path taken (incremental or full with reason)
// and carrying the delta cardinality and wall time.
func (r *Registry) CommitTrace(doc string) *exec.Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans[doc]
}

// query is one registered continuous query with its retained result.
type query struct {
	doc, src string
	strategy exec.Strategy
	maxFrac  float64
	ringSize int
	plan     core.Op  // immutable after registration
	inc      *incPlan // immutable after registration; nil → full-only
	incWhy   fallback // immutable after registration; why inc is nil

	mu    sync.Mutex
	items []item                     // guarded by mu
	gen   uint64                     // guarded by mu
	store *storage.Store             // guarded by mu
	subs  map[*Subscription]struct{} // guarded by mu
	ring  []Delta                    // guarded by mu
	wake  chan struct{}              // guarded by mu (closed and replaced per delta)
	dead  bool                       // guarded by mu
}

// query finds or registers the continuous query for (doc, src),
// serialized against the worker by the registry lock: a new query's
// initial evaluation completes before any later commit is delivered.
func (r *Registry) query(doc, src string) (*query, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	k := qkey{doc: doc, src: src}
	if q, ok := r.qs[k]; ok {
		return q, nil
	}
	if len(r.qs) >= r.cfg.MaxQueries {
		if !r.evictIdle() {
			return nil, fmt.Errorf("%w: %d registered", ErrTooManyQueries, len(r.qs))
		}
	}
	q, err := r.register(doc, src)
	if err != nil {
		return nil, err
	}
	r.qs[k] = q
	return q, nil
}

// evictIdle removes one subscriber-less query to make room; reports
// whether a victim was found. The caller holds r.mu.
func (r *Registry) evictIdle() bool {
	for k, q := range r.qs {
		q.mu.Lock()
		idle := len(q.subs) == 0
		if idle {
			q.dead = true
		}
		q.mu.Unlock()
		if idle {
			delete(r.qs, k)
			r.met.evictedQueries.Add(1)
			return true
		}
	}
	return false
}

// register compiles and fully evaluates a new query against the
// document's current snapshot. The caller holds r.mu, which blocks the
// worker: no commit can interleave with the initial evaluation.
func (r *Registry) register(doc, src string) (*query, error) {
	st, syn, gen, err := r.eng.Snapshot(doc)
	if err != nil {
		return nil, err
	}
	c, err := compile.Compile(src, compile.Options{}, st, syn)
	if err != nil {
		return nil, fmt.Errorf("cq: compile %q: %w", src, err)
	}
	crossDoc := false
	core.Walk(c.Plan, func(o core.Op) bool {
		if d, ok := o.(*core.DocOp); ok && d.URI != "" {
			crossDoc = true
		}
		return true
	})
	if crossDoc {
		return nil, fmt.Errorf("%w: query references other documents via doc()", ErrNotWatchable)
	}
	inc, why := incrementalPlan(c.Plan)
	items, err := fullEval(doc, st, c.Plan, r.cfg.Strategy, newRematcher(doc, st, syn, r.eng))
	if err != nil {
		return nil, fmt.Errorf("cq: initial evaluation of %q: %w", src, err)
	}
	r.met.fullRuns.Add(1)
	r.met.fullBy[fbInitial].Add(1)
	return &query{
		doc: doc, src: src,
		strategy: r.cfg.Strategy,
		maxFrac:  r.cfg.MaxFullFraction,
		ringSize: r.cfg.RingSize,
		plan:     c.Plan,
		inc:      inc,
		incWhy:   why,
		items:    items,
		gen:      gen,
		store:    st,
		subs:     map[*Subscription]struct{}{},
		wake:     make(chan struct{}),
	}, nil
}

// shutdown closes every subscription of a query removed from the
// registry (document closed or registry closing).
func (q *query) shutdown() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.dead = true
	for sub := range q.subs {
		close(sub.ch)
	}
	q.subs = map[*Subscription]struct{}{}
}

// processCommit advances one query across one commit and fans the delta
// out. It returns a trace span describing the path taken, or nil when
// the commit predates the query's state.
func (q *query) processCommit(qc queuedCommit, met *cqMetrics, cfg Config, rm *rematcher) *exec.Span {
	q.mu.Lock()
	defer q.mu.Unlock()
	ev := qc.ev
	if q.dead || ev.Gen <= q.gen {
		return nil
	}
	start := time.Now()

	fb := fbNone
	switch {
	case q.inc == nil:
		fb = q.incWhy
	case !ev.Tracked:
		fb = fbUntracked
	case ev.Gen != q.gen+1 || ev.Prev != q.store:
		fb = fbMissed
	}

	// Incremental path: walk the commit's mutation records, remapping
	// retained refs and re-matching only dirty regions.
	var next []item
	if fb == fbNone {
		maxCand := int(q.maxFrac * float64(ev.Store.NodeCount()))
		state := withOrigins(q.items)
		for _, rec := range ev.Records {
			var ok bool
			state, ok = q.inc.step(rec, state, maxCand, q.doc, q.plan, rm)
			if !ok {
				fb = fbThreshold
				break
			}
		}
		if fb == fbNone {
			next = state
		}
	}

	var removed []int
	var added []AddedItem
	if fb == fbNone {
		removed, added = diffByOrig(q.items, next)
		met.incRuns.Add(1)
	} else {
		full, err := fullEval(q.doc, ev.Store, q.plan, q.strategy, rm)
		if err != nil {
			// Keep state and generation: the next commit will see the gap
			// and run a healing full re-evaluation.
			met.fullRuns.Add(1)
			met.fullBy[fbError].Add(1)
			return &exec.Span{
				Label: fmt.Sprintf("cq %q full(%s): %v", q.src, fbError, err),
				Calls: 1, Dur: time.Since(start),
			}
		}
		if q.inc != nil && ev.Tracked {
			// Refs survive a tracked commit: join the fresh matches back
			// to old positions for a minimal positional delta.
			old := remapItems(withOrigins(q.items), ev.Records)
			assignOrigins(old, full)
			removed, added = diffByOrig(q.items, full)
		} else {
			removed, added = diffLCS(q.items, full)
		}
		next = full
		met.fullRuns.Add(1)
		met.fullBy[fb].Add(1)
	}
	met.commits.Add(1)

	d := Delta{
		Doc: q.doc, Gen: ev.Gen,
		Removed: removed, Added: added,
		Size:    len(next),
		Full:    fb != fbNone,
		Reason:  fb.String(),
		Latency: time.Since(qc.at).Nanoseconds(),
	}
	q.items = next
	q.gen = ev.Gen
	q.store = ev.Store
	q.ring = append(q.ring, d)
	if len(q.ring) > q.ringSize {
		q.ring = append(q.ring[:0], q.ring[len(q.ring)-q.ringSize:]...)
	}
	close(q.wake)
	q.wake = make(chan struct{})
	for sub := range q.subs {
		select {
		case sub.ch <- d:
			met.deltas.Add(1)
			met.deltaItems.Add(int64(len(d.Removed) + len(d.Added)))
		default:
			// Slow consumer: evict rather than block or buffer unboundedly.
			sub.lagged.Store(true)
			close(sub.ch)
			delete(q.subs, sub)
			met.evictedSubs.Add(1)
		}
	}

	mode := "incremental"
	if fb != fbNone {
		mode = "full(" + fb.String() + ")"
	}
	return &exec.Span{
		Label: fmt.Sprintf("cq %q %s", q.src, mode),
		Calls: 1,
		In:    int64(len(ev.Records)),
		Out:   int64(len(removed) + len(added)),
		Dur:   time.Since(start),
	}
}

// withOrigins copies the retained state, stamping each item's position
// as its origin for this commit's positional diff.
func withOrigins(items []item) []item {
	out := make([]item, len(items))
	for i, it := range items {
		out[i] = item{ref: it.ref, xml: it.xml, orig: i}
	}
	return out
}

// Subscription is one subscriber's delta stream.
type Subscription struct {
	q      *query
	ch     chan Delta
	lagged atomic.Bool
}

// Deltas returns the subscriber's channel. The first delta is a full
// snapshot of the current result ("initial"); each later delta is one
// commit. The channel closes when the subscription is closed, the
// document or registry closes, or the subscriber is evicted for falling
// behind (check Lagged to distinguish).
func (s *Subscription) Deltas() <-chan Delta { return s.ch }

// Lagged reports whether the subscription was evicted because its
// buffer overflowed; the accumulated state is then incomplete and the
// client should resubscribe.
func (s *Subscription) Lagged() bool { return s.lagged.Load() }

// Close detaches the subscription and closes its channel. Idempotent
// with respect to eviction and registry shutdown.
func (s *Subscription) Close() {
	q := s.q
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.subs[s]; ok {
		delete(q.subs, s)
		close(s.ch)
	}
}

// Subscribe registers (or reuses) the continuous query for (doc, src)
// and attaches a subscriber. The first delivered delta is a full
// snapshot of the current result at the subscribed generation, so
// accumulating every delta from the start reproduces the live result
// exactly.
func (r *Registry) Subscribe(doc, src string) (*Subscription, error) {
	for {
		q, err := r.query(doc, src)
		if err != nil {
			return nil, err
		}
		q.mu.Lock()
		if q.dead {
			// Lost a race with document close or eviction; re-register.
			q.mu.Unlock()
			continue
		}
		sub := &Subscription{q: q, ch: make(chan Delta, r.cfg.SubscriberBuffer)}
		q.subs[sub] = struct{}{}
		sub.ch <- q.snapshotDeltaLocked()
		q.mu.Unlock()
		return sub, nil
	}
}

// snapshotDeltaLocked builds the initial full-state delta. Caller holds
// q.mu.
func (q *query) snapshotDeltaLocked() Delta {
	added := make([]AddedItem, len(q.items))
	for i, it := range q.items {
		added[i] = AddedItem{Index: i, XML: it.xml}
	}
	return Delta{
		Doc: q.doc, Gen: q.gen, Added: added, Size: len(q.items),
		Full: true, Reason: fbInitial.String(),
	}
}

// Result returns the query's current accumulated result and generation,
// registering the query if needed.
func (r *Registry) Result(doc, src string) ([]string, uint64, error) {
	q, err := r.query(doc, src)
	if err != nil {
		return nil, 0, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, len(q.items))
	for i, it := range q.items {
		out[i] = it.xml
	}
	return out, q.gen, nil
}

// PollResult is a long-poll response: either a contiguous run of deltas
// after the caller's generation, or (Reset) a full snapshot when the
// caller is too far behind the delta ring — or was never initialized.
type PollResult struct {
	// Gen is the generation the response brings the caller up to.
	Gen uint64 `json:"gen"`
	// Reset reports that Items replaces all client state (Deltas empty);
	// callers pass since=0 to request this explicitly.
	Reset bool `json:"reset,omitempty"`
	// Items is the full serialized result (only when Reset).
	Items []string `json:"items,omitempty"`
	// Deltas are the commits after the caller's generation, in order.
	Deltas []Delta `json:"deltas,omitempty"`
}

// Poll is the long-poll interface: it returns the deltas committed
// after generation since, waiting up to wait for one to arrive when the
// caller is current. since=0 (or a generation older than the retained
// ring) returns a full snapshot with Reset set.
func (r *Registry) Poll(ctx context.Context, doc, src string, since uint64, wait time.Duration) (*PollResult, error) {
	q, err := r.query(doc, src)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(wait)
	for {
		q.mu.Lock()
		if q.dead {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		if since == 0 || since > q.gen {
			res := q.snapshotPollLocked()
			q.mu.Unlock()
			return res, nil
		}
		if q.gen > since {
			ds, ok := q.ringSinceLocked(since)
			if !ok {
				res := q.snapshotPollLocked()
				q.mu.Unlock()
				return res, nil
			}
			gen := q.gen
			q.mu.Unlock()
			return &PollResult{Gen: gen, Deltas: ds}, nil
		}
		wake := q.wake
		gen := q.gen
		q.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return &PollResult{Gen: gen}, nil
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			return &PollResult{Gen: gen}, nil
		case <-ctx.Done():
			t.Stop()
			return &PollResult{Gen: gen}, nil
		}
	}
}

// snapshotPollLocked builds a Reset response. Caller holds q.mu.
func (q *query) snapshotPollLocked() *PollResult {
	items := make([]string, len(q.items))
	for i, it := range q.items {
		items[i] = it.xml
	}
	return &PollResult{Gen: q.gen, Reset: true, Items: items}
}

// ringSinceLocked returns the retained deltas with Gen > since, in
// order, and reports whether they form a contiguous run from since+1
// (false → the caller is too far behind and needs a Reset). Caller
// holds q.mu.
func (q *query) ringSinceLocked(since uint64) ([]Delta, bool) {
	var out []Delta
	expect := since + 1
	for _, d := range q.ring {
		if d.Gen <= since {
			continue
		}
		if d.Gen != expect {
			return nil, false
		}
		expect++
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// cqMetrics holds the registry's counters (atomics: the worker must
// never contend with scrapes).
type cqMetrics struct {
	commits        atomic.Int64
	incRuns        atomic.Int64
	fullRuns       atomic.Int64
	fullBy         [fbCount]atomic.Int64
	deltas         atomic.Int64
	deltaItems     atomic.Int64
	evictedSubs    atomic.Int64
	evictedQueries atomic.Int64
	dropped        atomic.Int64
}

// Stats is a point-in-time snapshot of the registry's counters.
type Stats struct {
	// Queries and Subscribers are instantaneous gauges.
	Queries     int `json:"queries"`
	Subscribers int `json:"subscribers"`
	// Commits counts processed commits across all queries; Incremental
	// and FullRuns partition the evaluation path taken (FullRuns also
	// counts each query's initial evaluation).
	Commits     int64 `json:"commits"`
	Incremental int64 `json:"incremental"`
	FullRuns    int64 `json:"full_runs"`
	// FullByReason tallies full re-evaluations by fallback reason.
	FullByReason map[string]int64 `json:"full_by_reason,omitempty"`
	// DeltasDelivered counts deltas handed to subscribers; DeltaItems
	// sums their removed+added cardinalities.
	DeltasDelivered int64 `json:"deltas_delivered"`
	DeltaItems      int64 `json:"delta_items"`
	// EvictedSubscribers counts slow-consumer evictions;
	// EvictedQueries counts idle queries displaced at the cap;
	// DroppedCommits counts notifier-queue overflows.
	EvictedSubscribers int64 `json:"evicted_subscribers"`
	EvictedQueries     int64 `json:"evicted_queries"`
	DroppedCommits     int64 `json:"dropped_commits"`
}

// Stats returns a snapshot of the registry's counters and gauges.
func (r *Registry) Stats() Stats {
	s := Stats{
		Commits:            r.met.commits.Load(),
		Incremental:        r.met.incRuns.Load(),
		FullRuns:           r.met.fullRuns.Load(),
		DeltasDelivered:    r.met.deltas.Load(),
		DeltaItems:         r.met.deltaItems.Load(),
		EvictedSubscribers: r.met.evictedSubs.Load(),
		EvictedQueries:     r.met.evictedQueries.Load(),
		DroppedCommits:     r.met.dropped.Load(),
	}
	for f := fallback(1); f < fbCount; f++ {
		if n := r.met.fullBy[f].Load(); n != 0 {
			if s.FullByReason == nil {
				s.FullByReason = map[string]int64{}
			}
			s.FullByReason[f.String()] = n
		}
	}
	r.mu.Lock()
	qs := make([]*query, 0, len(r.qs))
	for _, q := range r.qs {
		qs = append(qs, q)
	}
	r.mu.Unlock()
	s.Queries = len(qs)
	for _, q := range qs {
		q.mu.Lock()
		s.Subscribers += len(q.subs)
		q.mu.Unlock()
	}
	return s
}
