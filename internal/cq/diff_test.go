package cq

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"xqp/internal/storage"
)

func mkItems(xs ...string) []item {
	out := make([]item, len(xs))
	for i, x := range xs {
		out[i] = item{ref: storage.NodeRef(-1), xml: x, orig: -1}
	}
	return out
}

func TestApplyCheckedMalformed(t *testing.T) {
	prev := []string{"a", "b", "c"}
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"removed out of range", Delta{Removed: []int{3}}, "out of range"},
		{"removed negative", Delta{Removed: []int{-1}}, "out of range"},
		{"removed not ascending", Delta{Removed: []int{1, 1}}, "not strictly ascending"},
		{"added index out of range", Delta{Added: []AddedItem{{Index: 4, XML: "x"}}}, "out of range"},
		{"added index negative", Delta{Added: []AddedItem{{Index: -1, XML: "x"}}}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.d.ApplyChecked(prev); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ApplyChecked error = %v, want containing %q", err, tc.want)
			}
		})
	}
	// More removals than prev items: the capacity arithmetic
	// len(prev)-len(Removed)+len(Added) goes negative; this must error
	// cleanly, not panic inside make.
	over := Delta{Removed: []int{0, 1, 2, 3, 4}}
	if _, err := over.ApplyChecked([]string{"a"}); err == nil {
		t.Fatal("over-removal delta applied without error")
	}
	// A valid delta still round-trips identically through both paths.
	d := Delta{Removed: []int{1}, Added: []AddedItem{{Index: 0, XML: "x"}}}
	got, err := d.ApplyChecked(prev)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Apply(prev)
	if len(got) != len(want) {
		t.Fatalf("ApplyChecked = %q, Apply = %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplyChecked = %q, Apply = %q", got, want)
		}
	}
}

func TestDiffByOrigBadOriginDegrades(t *testing.T) {
	old := mkItems("a", "b")
	next := []item{
		{ref: -1, xml: "a", orig: 0},
		{ref: -1, xml: "b", orig: 7}, // corrupt annotation: beyond len(old)
	}
	removed, added := diffByOrig(old, next)
	// The bad-origin item degrades to remove+add instead of panicking.
	if len(removed) != 1 || removed[0] != 1 {
		t.Fatalf("removed = %v", removed)
	}
	if len(added) != 1 || added[0].Index != 1 || added[0].XML != "b" {
		t.Fatalf("added = %v", added)
	}
	d := Delta{Removed: removed, Added: added}
	got := d.Apply([]string{"a", "b"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("round trip = %q", got)
	}
}

// TestDiffLCSCapBoundary pins the prefix/suffix-trim behaviour at the
// lcsCellCap boundary: a large, mostly unchanged result whose raw n*m
// crosses the cap must still produce a minimal delta (the trimmed
// middle is tiny), not a wholesale remove-all/add-all.
func TestDiffLCSCapBoundary(t *testing.T) {
	const n = 2048 // raw table n*m = 4M cells, well past lcsCellCap (1M)
	old := make([]item, n)
	next := make([]item, n)
	for i := 0; i < n; i++ {
		old[i] = item{ref: -1, xml: fmt.Sprintf("it%d", i), orig: -1}
		next[i] = old[i]
	}
	next[n/2] = item{ref: -1, xml: "changed", orig: -1}
	removed, added := diffLCS(old, next)
	if len(removed) != 1 || removed[0] != n/2 {
		t.Fatalf("removed = %v (len %d), want [%d]", removed[:min(len(removed), 4)], len(removed), n/2)
	}
	if len(added) != 1 || added[0].Index != n/2 || added[0].XML != "changed" {
		t.Fatalf("added = %+v (len %d)", added[:min(len(added), 4)], len(added))
	}
	// A genuinely wholesale change past the cap still falls back, and
	// the fallback's positions still round-trip through Apply.
	for i := 0; i < n; i++ {
		next[i] = item{ref: -1, xml: fmt.Sprintf("new%d", i), orig: -1}
	}
	removed, added = diffLCS(old, next)
	if len(removed) != n || len(added) != n {
		t.Fatalf("wholesale fallback: %d removed, %d added, want %d each", len(removed), len(added), n)
	}
	prev := make([]string, n)
	for i := range prev {
		prev[i] = old[i].xml
	}
	got, err := Delta{Removed: removed, Added: added}.ApplyChecked(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != next[i].xml {
			t.Fatalf("wholesale round trip diverges at %d: %q != %q", i, got[i], next[i].xml)
		}
	}
}

// FuzzDeltaApply feeds arbitrary wire-format deltas through
// ApplyChecked: whatever the bytes decode to, application must either
// succeed with a consistent size or fail with an error — never panic.
func FuzzDeltaApply(f *testing.F) {
	f.Add(`{"gen":2,"removed":[0],"added":[{"index":0,"xml":"<b/>"}],"size":1}`, 1)
	f.Add(`{"gen":1,"removed":[5]}`, 2)
	f.Add(`{"gen":1,"removed":[0,1,2,3,4]}`, 1)
	f.Add(`{"gen":1,"added":[{"index":99,"xml":"x"}]}`, 0)
	f.Add(`{"gen":1,"added":[{"index":-1,"xml":"x"}]}`, 3)
	f.Add(`{"gen":1,"removed":[1,0]}`, 2)
	f.Add(`{"gen":3,"removed":[0],"added":`, 1) // truncated payload
	f.Fuzz(func(t *testing.T, payload string, stateSize int) {
		var d Delta
		if err := json.Unmarshal([]byte(payload), &d); err != nil {
			return
		}
		if stateSize < 0 {
			stateSize = -stateSize
		}
		stateSize %= 64
		prev := make([]string, stateSize)
		for i := range prev {
			prev[i] = fmt.Sprintf("s%d", i)
		}
		out, err := d.ApplyChecked(prev)
		if err != nil {
			return
		}
		if want := len(prev) - len(d.Removed) + len(d.Added); len(out) != want {
			t.Fatalf("applied size %d, want %d (delta %+v over %d items)", len(out), want, d, len(prev))
		}
	})
}
