package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is a reference implementation used for differential testing.
type naive struct{ bits []bool }

func (n naive) rank1(i int) int {
	c := 0
	for j := 0; j < i && j < len(n.bits); j++ {
		if n.bits[j] {
			c++
		}
	}
	return c
}

func (n naive) select1(k int) int {
	c := 0
	for j, b := range n.bits {
		if b {
			c++
			if c == k {
				return j
			}
		}
	}
	return -1
}

func (n naive) select0(k int) int {
	c := 0
	for j, b := range n.bits {
		if !b {
			c++
			if c == k {
				return j
			}
		}
	}
	return -1
}

func randomBits(r *rand.Rand, n int, p float64) []bool {
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = r.Float64() < p
	}
	return bs
}

func TestEmpty(t *testing.T) {
	v := FromBits(nil)
	if v.Len() != 0 || v.Ones() != 0 || v.Zeros() != 0 {
		t.Fatalf("empty vector: Len=%d Ones=%d Zeros=%d", v.Len(), v.Ones(), v.Zeros())
	}
	if got := v.Rank1(0); got != 0 {
		t.Errorf("Rank1(0) = %d, want 0", got)
	}
	if got := v.Select1(1); got != -1 {
		t.Errorf("Select1(1) = %d, want -1", got)
	}
	if got := v.Select0(1); got != -1 {
		t.Errorf("Select0(1) = %d, want -1", got)
	}
}

func TestSingleBits(t *testing.T) {
	v1 := FromBits([]bool{true})
	if v1.Rank1(1) != 1 || v1.Select1(1) != 0 || !v1.Get(0) {
		t.Errorf("single 1-bit vector misbehaves")
	}
	v0 := FromBits([]bool{false})
	if v0.Rank1(1) != 0 || v0.Select0(1) != 0 || v0.Get(0) {
		t.Errorf("single 0-bit vector misbehaves")
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get out of range did not panic")
		}
	}()
	FromBits([]bool{true}).Get(1)
}

func TestRankSelectAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 63, 64, 65, 511, 512, 513, 1000, 4096, 10007} {
		for _, p := range []float64{0.0, 0.05, 0.5, 0.95, 1.0} {
			bs := randomBits(r, n, p)
			ref := naive{bs}
			v := FromBits(bs)
			if v.Len() != n {
				t.Fatalf("Len = %d, want %d", v.Len(), n)
			}
			if v.Ones() != ref.rank1(n) {
				t.Fatalf("n=%d p=%.2f: Ones = %d, want %d", n, p, v.Ones(), ref.rank1(n))
			}
			for trial := 0; trial < 200; trial++ {
				i := r.Intn(n + 1)
				if got, want := v.Rank1(i), ref.rank1(i); got != want {
					t.Fatalf("n=%d p=%.2f: Rank1(%d) = %d, want %d", n, p, i, got, want)
				}
				if got, want := v.Rank0(i), i-ref.rank1(i); got != want {
					t.Fatalf("n=%d p=%.2f: Rank0(%d) = %d, want %d", n, p, i, got, want)
				}
			}
			for k := 1; k <= v.Ones(); k += 1 + v.Ones()/50 {
				if got, want := v.Select1(k), ref.select1(k); got != want {
					t.Fatalf("n=%d p=%.2f: Select1(%d) = %d, want %d", n, p, k, got, want)
				}
			}
			for k := 1; k <= v.Zeros(); k += 1 + v.Zeros()/50 {
				if got, want := v.Select0(k), ref.select0(k); got != want {
					t.Fatalf("n=%d p=%.2f: Select0(%d) = %d, want %d", n, p, k, got, want)
				}
			}
		}
	}
}

// Property: Rank1(Select1(k)) == k-1 and Get(Select1(k)) == true.
func TestSelectRankInverseProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		r := rand.New(rand.NewSource(seed))
		v := FromBits(randomBits(r, n, 0.3))
		for k := 1; k <= v.Ones(); k++ {
			pos := v.Select1(k)
			if pos < 0 || !v.Get(pos) || v.Rank1(pos) != k-1 || v.Rank1(pos+1) != k {
				return false
			}
		}
		for k := 1; k <= v.Zeros(); k++ {
			pos := v.Select0(k)
			if pos < 0 || v.Get(pos) || v.Rank0(pos) != k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank is monotone and increments exactly on set bits.
func TestRankMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(3000) + 1
		v := FromBits(randomBits(r, n, 0.5))
		prev := 0
		for i := 1; i <= n; i++ {
			cur := v.Rank1(i)
			step := cur - prev
			if step < 0 || step > 1 {
				return false
			}
			if (step == 1) != v.Get(i-1) {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendN(t *testing.T) {
	b := NewBuilder(0)
	b.AppendN(true, 100)
	b.AppendN(false, 37)
	b.AppendN(true, 1)
	v := b.Build()
	if v.Len() != 138 || v.Ones() != 101 {
		t.Fatalf("Len=%d Ones=%d, want 138/101", v.Len(), v.Ones())
	}
	if v.Select1(101) != 137 {
		t.Errorf("Select1(101) = %d, want 137", v.Select1(101))
	}
	if v.Select0(1) != 100 {
		t.Errorf("Select0(1) = %d, want 100", v.Select0(1))
	}
}

func TestSizeBytesPositive(t *testing.T) {
	v := FromBits(randomBits(rand.New(rand.NewSource(1)), 1000, 0.5))
	if v.SizeBytes() <= 1000/8 {
		t.Errorf("SizeBytes = %d, implausibly small", v.SizeBytes())
	}
}

func BenchmarkRank1(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	v := FromBits(randomBits(r, 1<<20, 0.5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Rank1(i % v.Len())
	}
}

func BenchmarkSelect1(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	v := FromBits(randomBits(r, 1<<20, 0.5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Select1(i%v.Ones() + 1)
	}
}
