// Package bitvec provides succinct bit vectors with constant-time rank and
// near-constant-time select support.
//
// A Vector is an immutable sequence of bits packed into 64-bit words,
// augmented with a two-level directory of precomputed population counts.
// Rank1(i) (the number of 1-bits in positions [0, i)) is answered with one
// directory lookup plus one popcount; Select1(k) (the position of the k-th
// 1-bit, 1-based) binary-searches the directory and finishes inside a single
// word. These primitives underpin the balanced-parentheses tree encoding in
// package bp, which in turn underpins the succinct document store.
package bitvec

import (
	"fmt"
	"math/bits"
)

const (
	wordBits  = 64
	blockWrds = 8 // words per rank block (512 bits)
	blockBits = wordBits * blockWrds
)

// Builder accumulates bits and produces an immutable Vector.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a Builder with capacity for sizeHint bits.
func NewBuilder(sizeHint int) *Builder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Builder{words: make([]uint64, 0, (sizeHint+wordBits-1)/wordBits)}
}

// Append adds one bit to the end of the sequence.
func (b *Builder) Append(bit bool) {
	w, off := b.n/wordBits, uint(b.n%wordBits)
	if w == len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[w] |= 1 << off
	}
	b.n++
}

// AppendN adds n copies of bit.
func (b *Builder) AppendN(bit bool, n int) {
	for i := 0; i < n; i++ {
		b.Append(bit)
	}
}

// Len reports the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// Build freezes the builder into a Vector. The builder must not be used
// afterwards.
func (b *Builder) Build() *Vector {
	v := &Vector{words: b.words, n: b.n}
	v.index()
	b.words = nil
	b.n = 0
	return v
}

// Vector is an immutable bit sequence supporting Rank and Select.
type Vector struct {
	words []uint64
	n     int
	// blockRank[i] is the number of 1-bits strictly before block i.
	blockRank []uint64
	ones      int
}

// FromBits builds a Vector from a slice of booleans; convenient in tests.
func FromBits(bitsIn []bool) *Vector {
	b := NewBuilder(len(bitsIn))
	for _, bit := range bitsIn {
		b.Append(bit)
	}
	return b.Build()
}

func (v *Vector) index() {
	nb := (len(v.words) + blockWrds - 1) / blockWrds
	v.blockRank = make([]uint64, nb+1)
	var acc uint64
	for i := 0; i < nb; i++ {
		v.blockRank[i] = acc
		end := (i + 1) * blockWrds
		if end > len(v.words) {
			end = len(v.words)
		}
		for _, w := range v.words[i*blockWrds : end] {
			acc += uint64(bits.OnesCount64(w))
		}
	}
	v.blockRank[nb] = acc
	v.ones = int(acc)
}

// Len reports the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Ones reports the total number of 1-bits.
func (v *Vector) Ones() int { return v.ones }

// Zeros reports the total number of 0-bits.
func (v *Vector) Zeros() int { return v.n - v.ones }

// Get reports the bit at position i. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]>>(uint(i%wordBits))&1 == 1
}

// Rank1 returns the number of 1-bits in positions [0, i). i may equal Len().
func (v *Vector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= v.n {
		return v.ones
	}
	blk := i / blockBits
	r := v.blockRank[blk]
	w := blk * blockWrds
	for ; (w+1)*wordBits <= i; w++ {
		r += uint64(bits.OnesCount64(v.words[w]))
	}
	if rem := uint(i % wordBits); rem != 0 {
		r += uint64(bits.OnesCount64(v.words[w] & (1<<rem - 1)))
	}
	return int(r)
}

// Rank0 returns the number of 0-bits in positions [0, i).
func (v *Vector) Rank0(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= v.n {
		return v.n - v.ones
	}
	return i - v.Rank1(i)
}

// Select1 returns the position of the k-th 1-bit (k is 1-based).
// It returns -1 if the vector has fewer than k 1-bits.
func (v *Vector) Select1(k int) int {
	if k <= 0 || k > v.ones {
		return -1
	}
	// Binary search the block directory for the block containing the k-th 1.
	lo, hi := 0, len(v.blockRank)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v.blockRank[mid] < uint64(k) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(v.blockRank[lo])
	for w := lo * blockWrds; w < len(v.words); w++ {
		c := bits.OnesCount64(v.words[w])
		if rem <= c {
			return w*wordBits + selectInWord(v.words[w], rem)
		}
		rem -= c
	}
	return -1
}

// Select0 returns the position of the k-th 0-bit (k is 1-based), or -1.
func (v *Vector) Select0(k int) int {
	if k <= 0 || k > v.n-v.ones {
		return -1
	}
	// Blocks store 1-ranks; 0-rank of block i is i*blockBits - blockRank[i]
	// (clamped at the tail). Binary search on that.
	lo, hi := 0, len(v.blockRank)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		zeros := mid*blockBits - int(v.blockRank[mid])
		if zeros < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - (lo*blockBits - int(v.blockRank[lo]))
	for w := lo * blockWrds; w < len(v.words); w++ {
		word := ^v.words[w]
		if w == len(v.words)-1 {
			if tail := uint(v.n % wordBits); tail != 0 {
				word &= 1<<tail - 1
			}
		}
		c := bits.OnesCount64(word)
		if rem <= c {
			return w*wordBits + selectInWord(word, rem)
		}
		rem -= c
	}
	return -1
}

// selectInWord returns the position (0-63) of the k-th set bit of w, 1-based.
func selectInWord(w uint64, k int) int {
	for i := 1; i < k; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// Words exposes the raw packed words; used by package bp to build its
// excess directory without re-walking bits one at a time.
func (v *Vector) Words() []uint64 { return v.words }

// SizeBytes reports the in-memory footprint of the vector including its
// rank directory. Used by the storage-size experiment (E1).
func (v *Vector) SizeBytes() int {
	return len(v.words)*8 + len(v.blockRank)*8 + 16
}
