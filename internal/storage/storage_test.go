package storage

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xqp/internal/vocab"
	"xqp/internal/xmldoc"
)

const bibXML = `<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>39.95</price>
  </book>
</bib>`

func TestLoadAndShape(t *testing.T) {
	s := MustLoad(bibXML)
	root := s.DocumentElement()
	if root == NilRef || s.Name(root) != "bib" {
		t.Fatalf("document element wrong: %v %q", root, s.Name(root))
	}
	books := s.ElementRefs("book")
	if len(books) != 2 {
		t.Fatalf("book refs = %d, want 2", len(books))
	}
	if got := s.Parent(books[0]); got != root {
		t.Errorf("Parent(book) = %v, want %v", got, root)
	}
	if a := s.Attribute(books[0], "year"); a == NilRef || s.Content(a) != "1994" {
		t.Errorf("year attribute wrong")
	}
	if a := s.Attribute(books[0], "nope"); a != NilRef {
		t.Errorf("missing attribute found")
	}
	titles := s.ElementRefs("title")
	if len(titles) != 2 || s.StringValue(titles[0]) != "TCP/IP Illustrated" {
		t.Fatalf("titles wrong: %v", titles)
	}
}

func TestLoadErrors(t *testing.T) {
	for _, bad := range []string{"", "<a><b></a></b>", "<a>", "plain"} {
		if _, err := LoadString(bad); err == nil {
			t.Errorf("LoadString(%q) succeeded, want error", bad)
		}
	}
}

func TestNavigationMatchesDoc(t *testing.T) {
	d := xmldoc.MustParse(bibXML)
	s := FromDoc(d)
	if s.NodeCount() != len(d.Nodes) {
		t.Fatalf("node counts differ: store %d, doc %d", s.NodeCount(), len(d.Nodes))
	}
	// The pre-order numbering must match the arena order, so navigation
	// must agree ref-for-id.
	for i := range d.Nodes {
		id := xmldoc.NodeID(i)
		ref := NodeRef(i)
		if got, want := s.Kind(ref), d.Kind(id); got != want {
			t.Fatalf("node %d: kind %v vs %v", i, got, want)
		}
		if d.Kind(id) == xmldoc.KindElement && s.Name(ref) != d.Name(id) {
			t.Fatalf("node %d: name %q vs %q", i, s.Name(ref), d.Name(id))
		}
		if got, want := s.Parent(ref), d.Nodes[id].Parent; NodeRef(want) != got {
			t.Fatalf("node %d: parent %v vs %v", i, got, want)
		}
		if got, want := int32(s.Depth(ref)), d.Nodes[id].Level; got != want {
			t.Fatalf("node %d: depth %d vs %d", i, got, want)
		}
		if got, want := s.StringValue(ref), d.StringValue(id); got != want {
			t.Fatalf("node %d: string value %q vs %q", i, got, want)
		}
	}
}

func TestRoundTripThroughStore(t *testing.T) {
	d1 := xmldoc.MustParse(bibXML)
	s := FromDoc(d1)
	d2 := s.ToDoc()
	if !xmldoc.DeepEqual(d1, d1.Root(), d2, d2.Root()) {
		t.Fatal("store round trip changed the tree")
	}
}

func TestStreamingLoadEqualsDomLoad(t *testing.T) {
	s1, err := LoadReader(strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	s2 := FromDoc(xmldoc.MustParse(bibXML))
	d1, d2 := s1.ToDoc(), s2.ToDoc()
	if !xmldoc.DeepEqual(d1, d1.Root(), d2, d2.Root()) {
		t.Fatal("streaming load differs from DOM load")
	}
}

func TestSubtreeContiguity(t *testing.T) {
	s := MustLoad(bibXML)
	for n := NodeRef(0); int(n) < s.NodeCount(); n++ {
		size := s.SubtreeSize(n)
		// Every node in (n, n+size) must have n as an ancestor.
		for d := n + 1; d < n+NodeRef(size); d++ {
			if !s.IsAncestor(n, d) {
				t.Fatalf("node %d not ancestor of in-range %d", n, d)
			}
		}
		// The node right after the range must not be a descendant.
		if after := n + NodeRef(size); int(after) < s.NodeCount() && s.IsAncestor(n, after) {
			t.Fatalf("node %d claims descendant %d outside range", n, after)
		}
	}
}

func TestSpanIsIntervalEncoding(t *testing.T) {
	s := MustLoad(bibXML)
	for a := NodeRef(0); int(a) < s.NodeCount(); a++ {
		ao, ac := s.Span(a)
		if ao >= ac {
			t.Fatalf("node %d: open %d >= close %d", a, ao, ac)
		}
		for d := NodeRef(0); int(d) < s.NodeCount(); d++ {
			do, dc := s.Span(d)
			want := ao < do && dc < ac
			if got := s.IsAncestor(a, d); got != want {
				t.Fatalf("IsAncestor(%d,%d) = %v, interval says %v", a, d, got, want)
			}
		}
	}
}

func TestScanVisitsSubtreeInPreorder(t *testing.T) {
	s := MustLoad(bibXML)
	books := s.ElementRefs("book")
	var visited []NodeRef
	s.Scan(books[0], func(n NodeRef, depth int) bool {
		visited = append(visited, n)
		return true
	})
	if len(visited) != s.SubtreeSize(books[0]) {
		t.Fatalf("Scan visited %d, want %d", len(visited), s.SubtreeSize(books[0]))
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] != visited[i-1]+1 {
			t.Fatal("Scan not in pre-order")
		}
	}
}

func TestScanPruning(t *testing.T) {
	s := MustLoad(bibXML)
	root := s.DocumentElement()
	var names []string
	s.Scan(root, func(n NodeRef, depth int) bool {
		if s.Kind(n) == xmldoc.KindElement {
			names = append(names, s.Name(n))
		}
		// Prune below book: we should see bib and the two books only.
		return s.Name(n) != "book"
	})
	if len(names) != 3 || names[0] != "bib" || names[1] != "book" || names[2] != "book" {
		t.Fatalf("pruned scan saw %v", names)
	}
}

func TestTagRefsDocumentOrder(t *testing.T) {
	s := MustLoad(bibXML)
	authors := s.ElementRefs("author")
	if len(authors) != 3 {
		t.Fatalf("authors = %d, want 3", len(authors))
	}
	for i := 1; i < len(authors); i++ {
		if authors[i-1] >= authors[i] {
			t.Fatal("TagRefs not in document order")
		}
	}
	if refs := s.ElementRefs("nosuch"); refs != nil {
		t.Fatalf("ElementRefs(nosuch) = %v", refs)
	}
}

func TestAccountant(t *testing.T) {
	s := MustLoad(bibXML)
	a := NewAccountant()
	s.SetAccountant(a)
	s.SetPageSize(64)
	for _, bk := range s.ElementRefs("book") {
		s.Scan(bk, func(n NodeRef, d int) bool { _ = s.StringValue(n); return true })
	}
	if a.Pages() == 0 || a.TouchCount() == 0 {
		t.Fatal("accountant recorded nothing")
	}
	a.Reset()
	if a.Pages() != 0 || a.TouchCount() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSizeBytesBreakdown(t *testing.T) {
	s := MustLoad(bibXML)
	st, tg, ct := s.SizeBytes()
	if st <= 0 || tg <= 0 || ct <= 0 {
		t.Fatalf("SizeBytes = %d/%d/%d", st, tg, ct)
	}
	if !strings.Contains(s.String(), "nodes=") {
		t.Fatal("String() malformed")
	}
}

func TestVocabSharing(t *testing.T) {
	vt := vocab.New()
	b1 := NewBuilder(vt)
	b1.StartElement("x")
	b1.EndElement()
	s1 := b1.Build()
	b2 := NewBuilder(vt)
	b2.StartElement("x")
	b2.EndElement()
	s2 := b2.Build()
	if s1.Tag(1) != s2.Tag(1) {
		t.Fatal("shared vocabulary produced different symbols")
	}
}

// Property: FromDoc ∘ ToDoc is the identity on random documents.
func TestStoreRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1 := randomDoc(r, 70)
		s := FromDoc(d1)
		d2 := s.ToDoc()
		return xmldoc.DeepEqual(d1, d1.Root(), d2, d2.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: navigation over the store matches navigation over the arena.
func TestNavigationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r, 90)
		s := FromDoc(d)
		if s.NodeCount() != len(d.Nodes) {
			return false
		}
		for i := range d.Nodes {
			ref, id := NodeRef(i), xmldoc.NodeID(i)
			if int32(s.Parent(ref)) != int32(d.Nodes[id].Parent) {
				return false
			}
			fcS := s.FirstChild(ref)
			fcD := d.Nodes[id].FirstChild
			if int32(fcS) != int32(fcD) {
				return false
			}
			nsS := s.NextSibling(ref)
			nsD := d.Nodes[id].NextSibling
			if int32(nsS) != int32(nsD) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomDoc(r *rand.Rand, maxNodes int) *xmldoc.Document {
	b := xmldoc.NewBuilder()
	names := []string{"a", "b", "c", "d"}
	var build func(depth, budget int) int
	build = func(depth, budget int) int {
		used := 1
		b.OpenElement(names[r.Intn(len(names))])
		if r.Intn(3) == 0 {
			b.Attr("k", "v")
		}
		for used < budget && depth < 8 && r.Intn(3) != 0 {
			if r.Intn(4) == 0 {
				b.Text("t")
			} else {
				used += build(depth+1, budget-used)
			}
		}
		b.CloseElement()
		return used
	}
	build(0, maxNodes)
	return b.Build()
}

func BenchmarkFromDoc(b *testing.B) {
	big := "<bib>" + strings.Repeat(bibXML[5:len(bibXML)-6], 100) + "</bib>"
	d := xmldoc.MustParse(big)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromDoc(d)
	}
}

func BenchmarkScan(b *testing.B) {
	big := "<bib>" + strings.Repeat(bibXML[5:len(bibXML)-6], 200) + "</bib>"
	s := MustLoad(big)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		s.Scan(0, func(n NodeRef, d int) bool { count++; return true })
	}
}
