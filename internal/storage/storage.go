// Package storage implements the succinct physical XML storage scheme of
// the paper's Section 4 (Zhang, Kacholia, Özsu, ICDE 2004).
//
// Structure and content are stored separately:
//
//   - the tree structure is linearized in pre-order as balanced parentheses
//     (package bp), one open/close pair per node, so that the arrival order
//     of a streamed document coincides with the storage order;
//   - one tag symbol (package vocab) is attached to each opening
//     parenthesis, in a dense array indexed by pre-order number;
//   - element content (text, attribute values, comments, PIs) lives in a
//     separate content store, referenced from the structure by pre-order
//     number.
//
// Node handles are pre-order numbers (NodeRef, 0-based; 0 is the synthetic
// document root), so a subtree is always the contiguous ref range
// [n, n+SubtreeSize(n)). The open/close parenthesis positions double as the
// node's interval encoding (start, end), and depth equals parenthesis
// excess, which is what the join-based operators consume.
//
// An optional Accountant counts distinct storage pages touched during
// navigation, modeling the I/O cost that the paper's experiments measure
// (experiment E9).
//
// # Concurrency
//
// A Store is immutable after Build/LoadReader returns: every accessor is
// a pure read (the lazily-built tag index is guarded by a sync.Once, and
// the Accountant serializes its counters internally), so any number of
// goroutines may query one Store concurrently without locking. The
// update operations (DeleteSubtree, InsertChild) are copy-on-write —
// they return a NEW Store and never modify the receiver — but swapping
// the new store into a shared catalog requires exclusive access;
// internal/engine serializes that swap behind a per-document RWMutex and
// bumps the document's generation so cached plans cannot outlive the
// store they were compiled against. The only mutating methods are
// SetAccountant and SetPageSize, which must be called before the store
// is shared.
package storage

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"xqp/internal/bitvec"
	"xqp/internal/bp"
	"xqp/internal/vocab"
	"xqp/internal/xmldoc"
)

// nextOrd issues Store.Ord values.
var nextOrd atomic.Int64

// NodeRef identifies a node by 0-based pre-order number.
type NodeRef int32

// NilRef is the absent node.
const NilRef NodeRef = -1

// Kind mirrors xmldoc.Kind for stored nodes.
type Kind = xmldoc.Kind

// DefaultPageSize is the default page size in bytes for I/O accounting.
const DefaultPageSize = 4096

// Store is an immutable succinct document store.
type Store struct {
	Vocab *vocab.Table
	Seq   *bp.Sequence
	URI   string
	// Ord is a process-wide creation ordinal used to give nodes from
	// different documents a stable, deterministic global order.
	Ord int64

	tags    []vocab.Symbol // per pre-order number
	kinds   []Kind         // per pre-order number
	content []string       // content values, densely packed
	cref    []int32        // per pre-order number: index into content or -1

	// openPos caches Select1 for pre-order -> parenthesis position.
	openPos []int32

	pageSize int
	acct     *Accountant

	tagIndexOnce sync.Once
	tagIndex     *TagIndex // guarded by tagIndexOnce
}

// Accountant tracks distinct pages touched; attach with Store.SetAccountant.
// It is safe for concurrent use: one accountant may observe queries from
// many goroutines (the engine's per-document page metrics rely on this).
type Accountant struct {
	mu    sync.Mutex
	pages map[int32]struct{} // guarded by mu
	// touches counts every page access including repeats.
	touches int64 // guarded by mu
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{pages: make(map[int32]struct{})}
}

// Reset clears all counters.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pages = make(map[int32]struct{})
	a.touches = 0
}

// Pages reports the number of distinct pages touched since the last Reset.
func (a *Accountant) Pages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pages)
}

// TouchCount reports every page access including repeats.
func (a *Accountant) TouchCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.touches
}

func (a *Accountant) touch(page int32) {
	a.mu.Lock()
	a.touches++
	a.pages[page] = struct{}{}
	a.mu.Unlock()
}

// SetAccountant installs (or removes, with nil) an I/O accountant.
func (s *Store) SetAccountant(a *Accountant) { s.acct = a }

// SetPageSize overrides the accounting page size in bytes.
func (s *Store) SetPageSize(bytes int) {
	if bytes <= 0 {
		bytes = DefaultPageSize
	}
	s.pageSize = bytes
}

// touchStructure records an access to the parenthesis at position pos.
// Structure pages hold pageSize*8 parentheses (one bit each) plus a tag
// symbol each; we charge by the denser tag array (4 bytes per node).
func (s *Store) touchStructure(pos int) {
	if s.acct == nil {
		return
	}
	perPage := s.pageSize / 4
	s.acct.touch(int32(pos / perPage))
}

// touchContent records an access to content item idx. Content pages are
// charged in a separate page-id space.
func (s *Store) touchContent(idx int32) {
	if s.acct == nil || idx < 0 {
		return
	}
	const contentBase = 1 << 28
	perPage := int32(s.pageSize / 64) // content entries are string-sized
	if perPage == 0 {
		perPage = 1
	}
	s.acct.touch(contentBase + idx/perPage)
}

// --- Construction ---

// Builder assembles a Store from document events; it is both the DOM
// loader's and the streaming loader's back end.
type Builder struct {
	vocabT  *vocab.Table
	bits    *bitvec.Builder
	tags    []vocab.Symbol
	kinds   []Kind
	content []string
	cref    []int32
	depth   int
}

// NewBuilder returns a Builder with the synthetic document root opened.
// If vt is nil a fresh vocabulary is created.
func NewBuilder(vt *vocab.Table) *Builder {
	if vt == nil {
		vt = vocab.New()
	}
	b := &Builder{vocabT: vt, bits: bitvec.NewBuilder(1 << 12)}
	b.open(vocab.Root, xmldoc.KindDocument, -1)
	return b
}

func (b *Builder) open(sym vocab.Symbol, k Kind, cidx int32) {
	b.bits.Append(true)
	b.tags = append(b.tags, sym)
	b.kinds = append(b.kinds, k)
	b.cref = append(b.cref, cidx)
	b.depth++
}

func (b *Builder) close() {
	b.bits.Append(false)
	b.depth--
}

// StartElement opens an element named name.
func (b *Builder) StartElement(name string) {
	b.open(b.vocabT.Intern(name), xmldoc.KindElement, -1)
}

// EndElement closes the innermost open element.
func (b *Builder) EndElement() {
	if b.depth <= 1 {
		panic("storage: EndElement with no open element")
	}
	b.close()
}

// Attr appends an attribute node (stored with an "@"-prefixed symbol).
func (b *Builder) Attr(name, value string) {
	idx := int32(len(b.content))
	b.content = append(b.content, value)
	b.open(b.vocabT.Intern("@"+name), xmldoc.KindAttribute, idx)
	b.close()
}

// Text appends a text node.
func (b *Builder) Text(s string) {
	idx := int32(len(b.content))
	b.content = append(b.content, s)
	b.open(b.vocabT.Intern("#text"), xmldoc.KindText, idx)
	b.close()
}

// Comment appends a comment node.
func (b *Builder) Comment(s string) {
	idx := int32(len(b.content))
	b.content = append(b.content, s)
	b.open(b.vocabT.Intern("#comment"), xmldoc.KindComment, idx)
	b.close()
}

// PI appends a processing-instruction node.
func (b *Builder) PI(target, data string) {
	idx := int32(len(b.content))
	b.content = append(b.content, data)
	b.open(b.vocabT.Intern("?"+target), xmldoc.KindPI, idx)
	b.close()
}

// Build freezes the builder into a Store, closing any open elements.
func (b *Builder) Build() *Store {
	for b.depth > 1 {
		b.close()
	}
	b.close() // document root
	s := &Store{
		Vocab:    b.vocabT,
		Seq:      bp.New(b.bits.Build()),
		Ord:      nextOrd.Add(1),
		tags:     b.tags,
		kinds:    b.kinds,
		content:  b.content,
		cref:     b.cref,
		pageSize: DefaultPageSize,
	}
	s.openPos = make([]int32, len(b.tags))
	for i := range s.openPos {
		s.openPos[i] = int32(s.Seq.PreorderSelect(i + 1))
	}
	return s
}

// FromDoc loads an xmldoc tree into a fresh Store.
func FromDoc(d *xmldoc.Document) *Store {
	b := NewBuilder(nil)
	var load func(n xmldoc.NodeID)
	load = func(n xmldoc.NodeID) {
		switch d.Kind(n) {
		case xmldoc.KindElement:
			b.StartElement(d.Name(n))
			for c := d.Nodes[n].FirstChild; c != xmldoc.Nil; c = d.Nodes[c].NextSibling {
				load(c)
			}
			b.EndElement()
		case xmldoc.KindAttribute:
			b.Attr(d.Name(n), d.Value(n))
		case xmldoc.KindText:
			b.Text(d.Value(n))
		case xmldoc.KindComment:
			b.Comment(d.Value(n))
		case xmldoc.KindPI:
			b.PI(d.Name(n), d.Value(n))
		case xmldoc.KindDocument:
			for c := d.Nodes[n].FirstChild; c != xmldoc.Nil; c = d.Nodes[c].NextSibling {
				load(c)
			}
		}
	}
	load(d.Root())
	s := b.Build()
	s.URI = d.URI
	return s
}

// LoadReader parses XML from r directly into a Store without building a DOM
// first: the pre-order storage layout coincides with the streaming arrival
// order, so loading is a single pass (experiment E8).
func LoadReader(r io.Reader) (*Store, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder(nil)
	depth := 0
	lastWasText := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: load: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.StartElement(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attr(a.Name.Local, a.Value)
			}
			depth++
			lastWasText = false
		case xml.EndElement:
			b.EndElement()
			depth--
			lastWasText = false
		case xml.CharData:
			if depth > 0 {
				txt := string(t)
				if strings.TrimSpace(txt) == "" {
					continue
				}
				if lastWasText {
					// Merge adjacent text (entity-split CharData).
					b.content[len(b.content)-1] += txt
				} else {
					b.Text(txt)
					lastWasText = true
				}
			}
		case xml.Comment:
			if depth > 0 {
				b.Comment(string(t))
				lastWasText = false
			}
		case xml.ProcInst:
			if depth > 0 {
				b.PI(t.Target, string(t.Inst))
				lastWasText = false
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("storage: load: %d unclosed elements", depth)
	}
	s := b.Build()
	if s.DocumentElement() == NilRef {
		return nil, fmt.Errorf("storage: load: no document element")
	}
	return s, nil
}

// LoadString parses an XML string into a Store.
func LoadString(s string) (*Store, error) {
	return LoadReader(strings.NewReader(s))
}

// MustLoad parses s and panics on error; for tests and examples.
func MustLoad(s string) *Store {
	st, err := LoadString(s)
	if err != nil {
		panic(err)
	}
	return st
}

// --- Accessors ---

// NodeCount reports the number of stored nodes, including the document root.
func (s *Store) NodeCount() int { return len(s.tags) }

// Root returns the synthetic document root.
func (s *Store) Root() NodeRef { return 0 }

// DocumentElement returns the top-level element, or NilRef.
func (s *Store) DocumentElement() NodeRef {
	for c := s.FirstChild(0); c != NilRef; c = s.NextSibling(c) {
		if s.kinds[c] == xmldoc.KindElement {
			return c
		}
	}
	return NilRef
}

// Kind returns the node kind.
func (s *Store) Kind(n NodeRef) Kind { return s.kinds[n] }

// Tag returns the node's tag symbol (elements: name; attributes: "@name";
// text: "#text"; etc.).
func (s *Store) Tag(n NodeRef) vocab.Symbol { return s.tags[n] }

// Name returns the node's name as queries see it ("year" for @year, "" for
// text/comments).
func (s *Store) Name(n NodeRef) string {
	switch s.kinds[n] {
	case xmldoc.KindElement:
		return s.Vocab.Name(s.tags[n])
	case xmldoc.KindAttribute:
		return s.Vocab.Name(s.tags[n])[1:]
	case xmldoc.KindPI:
		return s.Vocab.Name(s.tags[n])[1:]
	}
	return ""
}

// Content returns the node's own content ("" for elements).
func (s *Store) Content(n NodeRef) string {
	idx := s.cref[n]
	if idx < 0 {
		return ""
	}
	s.touchContent(idx)
	return s.content[idx]
}

// Open returns the node's opening parenthesis position (interval start).
func (s *Store) Open(n NodeRef) int {
	s.touchStructure(int(s.openPos[n]))
	return int(s.openPos[n])
}

// Close returns the node's closing parenthesis position (interval end).
func (s *Store) Close(n NodeRef) int {
	c := s.Seq.FindClose(s.Open(n))
	s.touchStructure(c)
	return c
}

// Span returns (start, end) parenthesis positions: the interval encoding.
func (s *Store) Span(n NodeRef) (int, int) {
	o := s.Open(n)
	return o, s.Close(n)
}

// Depth returns the node's depth (document root = 0).
func (s *Store) Depth(n NodeRef) int { return s.Seq.Depth(s.Open(n)) }

// refAt converts an open parenthesis position to a NodeRef.
func (s *Store) refAt(pos int) NodeRef {
	if pos < 0 {
		return NilRef
	}
	s.touchStructure(pos)
	return NodeRef(s.Seq.PreorderRank(pos) - 1)
}

// Parent returns the node's parent, or NilRef for the root.
func (s *Store) Parent(n NodeRef) NodeRef {
	return s.refAt(s.Seq.Parent(s.Open(n)))
}

// FirstChild returns the node's first child of any kind, or NilRef.
func (s *Store) FirstChild(n NodeRef) NodeRef {
	return s.refAt(s.Seq.FirstChild(s.Open(n)))
}

// NextSibling returns the node's next sibling of any kind, or NilRef.
func (s *Store) NextSibling(n NodeRef) NodeRef {
	return s.refAt(s.Seq.NextSibling(s.Open(n)))
}

// PrevSibling returns the node's previous sibling of any kind, or NilRef.
func (s *Store) PrevSibling(n NodeRef) NodeRef {
	return s.refAt(s.Seq.PrevSibling(s.Open(n)))
}

// LastChild returns the node's last child of any kind, or NilRef.
func (s *Store) LastChild(n NodeRef) NodeRef {
	return s.refAt(s.Seq.LastChild(s.Open(n)))
}

// SubtreeSize returns the number of nodes in n's subtree, including n.
// Descendant refs are exactly the contiguous range (n, n+SubtreeSize(n)).
func (s *Store) SubtreeSize(n NodeRef) int {
	return s.Seq.SubtreeSize(s.Open(n))
}

// IsLeaf reports whether n has no children.
func (s *Store) IsLeaf(n NodeRef) bool { return s.Seq.IsLeaf(s.Open(n)) }

// IsAncestor reports whether a is a proper ancestor of d.
func (s *Store) IsAncestor(a, d NodeRef) bool {
	return a < d && d < a+NodeRef(s.SubtreeSize(a))
}

// IsParent reports whether p is the parent of c.
func (s *Store) IsParent(p, c NodeRef) bool {
	return s.IsAncestor(p, c) && s.Depth(p)+1 == s.Depth(c)
}

// Attribute returns n's attribute named name, or NilRef.
func (s *Store) Attribute(n NodeRef, name string) NodeRef {
	sym := s.Vocab.Lookup("@" + name)
	if sym == vocab.None {
		return NilRef
	}
	for c := s.FirstChild(n); c != NilRef; c = s.NextSibling(c) {
		if s.kinds[c] != xmldoc.KindAttribute {
			break // attributes precede other children
		}
		if s.tags[c] == sym {
			return c
		}
	}
	return NilRef
}

// StringValue returns the XPath string-value of n: its own content for
// leaves with content, otherwise the concatenated text of its descendants.
// Thanks to pre-order refs this is a single contiguous scan.
func (s *Store) StringValue(n NodeRef) string {
	if idx := s.cref[n]; idx >= 0 {
		s.touchContent(idx)
		return s.content[idx]
	}
	end := n + NodeRef(s.SubtreeSize(n))
	var b strings.Builder
	for d := n + 1; d < end; d++ {
		if s.kinds[d] == xmldoc.KindText {
			s.touchContent(s.cref[d])
			b.WriteString(s.content[s.cref[d]])
		}
	}
	return b.String()
}

// Scan calls f for every node in n's subtree (including n) in pre-order,
// with the node's depth relative to n. Returning false prunes that subtree.
// This is the access pattern of the NoK matcher: one pass, contiguous pages.
func (s *Store) Scan(n NodeRef, f func(NodeRef, int) bool) {
	end := n + NodeRef(s.SubtreeSize(n))
	base := s.Depth(n)
	skipUntil := NodeRef(-1)
	for c := n; c < end; c++ {
		if c < skipUntil {
			continue
		}
		s.touchStructure(int(s.openPos[c]))
		if !f(c, s.Seq.Depth(int(s.openPos[c]))-base) {
			skipUntil = c + NodeRef(s.SubtreeSize(c))
		}
	}
}

// ToDoc materializes the store back into an xmldoc tree (for serialization
// and differential testing).
func (s *Store) ToDoc() *xmldoc.Document {
	b := xmldoc.NewBuilder()
	var emit func(n NodeRef)
	emit = func(n NodeRef) {
		switch s.kinds[n] {
		case xmldoc.KindDocument:
			for c := s.FirstChild(n); c != NilRef; c = s.NextSibling(c) {
				emit(c)
			}
		case xmldoc.KindElement:
			b.OpenElement(s.Name(n))
			for c := s.FirstChild(n); c != NilRef; c = s.NextSibling(c) {
				emit(c)
			}
			b.CloseElement()
		case xmldoc.KindAttribute:
			b.Attr(s.Name(n), s.Content(n))
		case xmldoc.KindText:
			b.Text(s.Content(n))
		case xmldoc.KindComment:
			b.Comment(s.Content(n))
		case xmldoc.KindPI:
			b.PI(s.Name(n), s.Content(n))
		}
	}
	emit(0)
	d := b.Build()
	d.URI = s.URI
	return d
}

// SubtreeDoc materializes the subtree rooted at n as a standalone
// xmldoc tree (for serialization and structural comparison).
func (s *Store) SubtreeDoc(n NodeRef) *xmldoc.Document {
	if n == 0 {
		return s.ToDoc()
	}
	b := xmldoc.NewBuilder()
	c := &subtreeCopier{s: s, b: b}
	c.copy(n)
	return b.Build()
}

// XMLString serializes the subtree at n.
func (s *Store) XMLString(n NodeRef) string {
	d := s.SubtreeDoc(n)
	return d.XMLString(d.Root())
}

type subtreeCopier struct {
	s *Store
	b *xmldoc.Builder
}

func (c *subtreeCopier) copy(n NodeRef) {
	switch c.s.kinds[n] {
	case xmldoc.KindElement:
		c.b.OpenElement(c.s.Name(n))
		for k := c.s.FirstChild(n); k != NilRef; k = c.s.NextSibling(k) {
			c.copy(k)
		}
		c.b.CloseElement()
	case xmldoc.KindAttribute:
		c.b.Attr(c.s.Name(n), c.s.Content(n))
	case xmldoc.KindText:
		c.b.Text(c.s.Content(n))
	case xmldoc.KindComment:
		c.b.Comment(c.s.Content(n))
	case xmldoc.KindPI:
		c.b.PI(c.s.Name(n), c.s.Content(n))
	case xmldoc.KindDocument:
		for k := c.s.FirstChild(n); k != NilRef; k = c.s.NextSibling(k) {
			c.copy(k)
		}
	}
}

// TagRefs returns all nodes with tag symbol sym, in document order, via
// the cached tag index. This is the index scan that feeds the join-based
// operators; the returned slice is shared and must not be mutated.
func (s *Store) TagRefs(sym vocab.Symbol) []NodeRef {
	if sym == vocab.None {
		return nil
	}
	return s.Index().Refs(sym)
}

// ElementRefs returns all element nodes named name, in document order.
func (s *Store) ElementRefs(name string) []NodeRef {
	sym := s.Vocab.Lookup(name)
	if sym == vocab.None {
		return nil
	}
	return s.TagRefs(sym)
}

// SizeBytes reports the store's footprint split into structure, tags and
// content (experiment E1).
func (s *Store) SizeBytes() (structure, tags, content int) {
	structure = s.Seq.SizeBytes() + 4*len(s.openPos)
	tags = 4*len(s.tags) + len(s.kinds) + 4*len(s.cref) + s.Vocab.SizeBytes()
	for _, c := range s.content {
		content += len(c) + 16
	}
	return structure, tags, content
}

// String summarizes the store for debugging.
func (s *Store) String() string {
	st, tg, ct := s.SizeBytes()
	return fmt.Sprintf("Store{nodes=%d, vocab=%d, structure=%dB, tags=%dB, content=%dB}",
		s.NodeCount(), s.Vocab.Len(), st, tg, ct)
}
