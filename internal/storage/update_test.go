package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xqp/internal/xmldoc"
)

func TestDeleteSubtree(t *testing.T) {
	s := MustLoad(bibXML)
	books := s.ElementRefs("book")
	before := s.NodeCount()
	size := s.SubtreeSize(books[0])
	out, stats, err := s.DeleteSubtree(books[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.NodeCount() != before-size {
		t.Fatalf("nodes after delete = %d, want %d", out.NodeCount(), before-size)
	}
	if stats.NodesDeleted != size {
		t.Fatalf("NodesDeleted = %d, want %d", stats.NodesDeleted, size)
	}
	if len(out.ElementRefs("book")) != 1 {
		t.Fatal("book not deleted")
	}
	// Remaining book is the second one.
	if out.StringValue(out.ElementRefs("title")[0]) != "Data on the Web" {
		t.Fatal("wrong book deleted")
	}
	if stats.SuccinctDirtyBytes <= 0 || stats.IntervalDirtyBytes <= stats.SuccinctDirtyBytes {
		t.Fatalf("locality stats wrong: %+v", stats)
	}
	// Original store untouched (copy-on-write).
	if s.NodeCount() != before {
		t.Fatal("original store mutated")
	}
}

func TestDeleteErrors(t *testing.T) {
	s := MustLoad(`<a><b/></a>`)
	if _, _, err := s.DeleteSubtree(0); err == nil {
		t.Error("deleting root succeeded")
	}
	if _, _, err := s.DeleteSubtree(NodeRef(s.NodeCount())); err == nil {
		t.Error("deleting out-of-range succeeded")
	}
}

func TestInsertChild(t *testing.T) {
	s := MustLoad(bibXML)
	frag := xmldoc.MustParse(`<book year="2004"><title>T3</title><price>10.00</price></book>`)
	root := s.DocumentElement()
	out, stats, err := s.InsertChild(root, frag)
	if err != nil {
		t.Fatal(err)
	}
	books := out.ElementRefs("book")
	if len(books) != 3 {
		t.Fatalf("books after insert = %d", len(books))
	}
	// Inserted as last child.
	titles := out.ElementRefs("title")
	if out.StringValue(titles[len(titles)-1]) != "T3" {
		t.Fatal("not inserted at the end")
	}
	if stats.NodesInserted != len(frag.Nodes)-1 {
		t.Fatalf("NodesInserted = %d", stats.NodesInserted)
	}
	// Structural invariants hold on the new store.
	for n := NodeRef(0); int(n) < out.NodeCount(); n++ {
		_ = out.SubtreeSize(n)
	}
}

func TestInsertErrors(t *testing.T) {
	s := MustLoad(`<a>txt</a>`)
	frag := xmldoc.MustParse(`<x/>`)
	textRef := NodeRef(2) // root(0)/a(1)/text(2)
	if s.Kind(textRef) != xmldoc.KindText {
		t.Fatal("test setup wrong")
	}
	if _, _, err := s.InsertChild(textRef, frag); err == nil {
		t.Error("inserting under text succeeded")
	}
	if _, _, err := s.InsertChild(NodeRef(99), frag); err == nil {
		t.Error("inserting under missing node succeeded")
	}
}

func TestUpdateLocalityScaling(t *testing.T) {
	// The succinct dirty region depends only on the edited subtree; the
	// interval dirty region grows with the document (the E11 claim).
	frag := xmldoc.MustParse(`<book><title>new</title></book>`)
	var prevInterval int
	for _, scale := range []int{1, 4} {
		s := FromDoc(bigBib(scale))
		root := s.DocumentElement()
		first := s.FirstChild(root)
		_, stats, err := s.InsertChild(first, frag)
		if err != nil {
			t.Fatal(err)
		}
		if stats.IntervalDirtyBytes <= prevInterval {
			t.Fatalf("interval dirty bytes did not grow with scale: %+v", stats)
		}
		prevInterval = stats.IntervalDirtyBytes
		if stats.SuccinctDirtyBytes > 200 {
			t.Fatalf("succinct dirty bytes not local: %+v", stats)
		}
	}
}

func bigBib(scale int) *xmldoc.Document {
	b := xmldoc.NewBuilder()
	b.OpenElement("bib")
	for i := 0; i < 20*scale; i++ {
		b.OpenElement("book")
		b.OpenElement("title")
		b.Text("t")
		b.CloseElement()
		b.CloseElement()
	}
	b.CloseElement()
	return b.Build()
}

// Property: delete ∘ insert round-trips (inserting a fragment as the last
// child and deleting it restores the original tree).
func TestInsertDeleteRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r, 40)
		s := FromDoc(d)
		frag := xmldoc.MustParse(`<inserted><x/>text</inserted>`)
		target := s.DocumentElement()
		s2, _, err := s.InsertChild(target, frag)
		if err != nil {
			return false
		}
		// The inserted subtree root is the last child of the target's
		// counterpart in s2 (same ref: insertion is after its subtree...
		// find it by name instead).
		ins := s2.ElementRefs("inserted")
		if len(ins) != 1 {
			return false
		}
		s3, _, err := s2.DeleteSubtree(ins[0])
		if err != nil {
			return false
		}
		d1, d3 := s.ToDoc(), s3.ToDoc()
		return xmldoc.DeepEqual(d1, d1.Root(), d3, d3.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateStatsEditLocation(t *testing.T) {
	s := MustLoad(bibXML)
	books := s.ElementRefs("book")

	// Insert: new nodes occupy [EditPoint, EditPoint+NodesInserted) in
	// the new store; refs before EditPoint are stable, refs at or after
	// it shift up by NodesInserted.
	frag := xmldoc.MustParse(`<note>see also</note>`)
	out, stats, err := s.InsertChild(books[0], frag)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Parent != books[0] {
		t.Fatalf("insert Parent = %d, want %d", stats.Parent, books[0])
	}
	wantEdit := books[0] + NodeRef(s.SubtreeSize(books[0]))
	if stats.EditPoint != wantEdit {
		t.Fatalf("insert EditPoint = %d, want %d", stats.EditPoint, wantEdit)
	}
	for d := stats.EditPoint; d < stats.EditPoint+NodeRef(stats.NodesInserted); d++ {
		if name := out.Name(d); name != "note" && out.Kind(d) != xmldoc.KindText {
			t.Fatalf("node %d in inserted interval is %s/%v, want inserted content", d, name, out.Kind(d))
		}
	}
	for r := NodeRef(0); r < stats.EditPoint; r++ {
		if s.Kind(r) != out.Kind(r) || s.Name(r) != out.Name(r) {
			t.Fatalf("ref %d before EditPoint not stable", r)
		}
	}
	for r := stats.EditPoint; int(r) < s.NodeCount(); r++ {
		shifted := r + NodeRef(stats.NodesInserted)
		if s.Kind(r) != out.Kind(shifted) || s.Name(r) != out.Name(shifted) {
			t.Fatalf("ref %d after EditPoint did not shift by %d", r, stats.NodesInserted)
		}
	}

	// Delete: the deleted interval is [EditPoint, EditPoint+NodesDeleted)
	// in the old store; later refs shift down.
	out2, dstats, err := s.DeleteSubtree(books[1])
	if err != nil {
		t.Fatal(err)
	}
	if dstats.Parent != s.Parent(books[1]) {
		t.Fatalf("delete Parent = %d, want %d", dstats.Parent, s.Parent(books[1]))
	}
	if dstats.EditPoint != books[1] {
		t.Fatalf("delete EditPoint = %d, want %d", dstats.EditPoint, books[1])
	}
	for r := dstats.EditPoint + NodeRef(dstats.NodesDeleted); int(r) < s.NodeCount(); r++ {
		shifted := r - NodeRef(dstats.NodesDeleted)
		if s.Kind(r) != out2.Kind(shifted) || s.Name(r) != out2.Name(shifted) {
			t.Fatalf("ref %d after deleted interval did not shift by -%d", r, dstats.NodesDeleted)
		}
	}
}
