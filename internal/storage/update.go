package storage

import (
	"fmt"

	"xqp/internal/xmldoc"
)

// UpdateStats quantifies the locality of an update: how much of each
// encoding actually changes. The paper's Section 4.2 claims the pre-order
// balanced-parentheses clustering makes updates local ("each update only
// affects a local sub-string"); by contrast, interval encodings renumber
// every node following the edit point.
type UpdateStats struct {
	// NodesInserted / NodesDeleted count affected nodes.
	NodesInserted int
	NodesDeleted  int
	// Parent is the node under which the edit happened: the insertion
	// parent for InsertChild, the deleted subtree's parent for
	// DeleteSubtree. Its ref is identical in the old and new stores
	// (it precedes the edit point in pre-order).
	Parent NodeRef
	// EditPoint is the first node ref whose identity changed: in the new
	// store, inserted nodes occupy [EditPoint, EditPoint+NodesInserted);
	// in the old store, deleted nodes occupied
	// [EditPoint, EditPoint+NodesDeleted). Refs at or after EditPoint
	// shift by NodesInserted-NodesDeleted between the two stores; refs
	// before it are stable. Incremental re-evaluation (internal/cq)
	// consumes this interval as the dirty region.
	EditPoint NodeRef
	// SuccinctDirtyBytes is the contiguous region of the succinct
	// encoding that changes: 2 bits per node in the structure stream
	// plus one tag id and kind byte per node, plus changed content.
	SuccinctDirtyBytes int
	// IntervalDirtyBytes is what an interval-encoded relation must
	// rewrite: the edited tuples plus the renumbered (start, end) of
	// every node at or after the edit point.
	IntervalDirtyBytes int
}

// The updates below are copy-on-write: they produce a new Store (the
// succinct structures are otherwise immutable). A disk-resident
// implementation would rewrite only the dirty region; UpdateStats reports
// that region's size so experiments can compare locality across schemes.

// DeleteSubtree removes the subtree rooted at target and returns the new
// store. The document root cannot be deleted.
func (s *Store) DeleteSubtree(target NodeRef) (*Store, UpdateStats, error) {
	if target <= 0 || int(target) >= s.NodeCount() {
		return nil, UpdateStats{}, fmt.Errorf("storage: DeleteSubtree(%d): no such node", target)
	}
	size := s.SubtreeSize(target)
	var contentBytes int
	for d := target; d < target+NodeRef(size); d++ {
		contentBytes += len(s.Content(d))
	}
	stats := UpdateStats{
		NodesDeleted:       size,
		Parent:             s.Parent(target),
		EditPoint:          target,
		SuccinctDirtyBytes: dirtySuccinct(size, contentBytes),
		IntervalDirtyBytes: dirtyInterval(s, target, size),
	}
	out := s.rebuild(func(b *Builder, n NodeRef) bool { return n != target }, nil)
	return out, stats, nil
}

// InsertChild inserts the document element(s) of frag as the last
// children of parent, returning the new store.
func (s *Store) InsertChild(parent NodeRef, frag *xmldoc.Document) (*Store, UpdateStats, error) {
	if int(parent) >= s.NodeCount() {
		return nil, UpdateStats{}, fmt.Errorf("storage: InsertChild(%d): no such node", parent)
	}
	if k := s.Kind(parent); k != xmldoc.KindElement && k != xmldoc.KindDocument {
		return nil, UpdateStats{}, fmt.Errorf("storage: InsertChild: %v node cannot have children", k)
	}
	inserted, contentBytes := fragSize(frag)
	// Everything after the parent's close parenthesis keeps its position;
	// interval encodings renumber from the insertion point on.
	stats := UpdateStats{
		NodesInserted:      inserted,
		Parent:             parent,
		EditPoint:          parent + NodeRef(s.SubtreeSize(parent)),
		SuccinctDirtyBytes: dirtySuccinct(inserted, contentBytes),
		IntervalDirtyBytes: dirtyInterval(s, parent+NodeRef(s.SubtreeSize(parent)), inserted),
	}
	out := s.rebuild(nil, map[NodeRef]*xmldoc.Document{parent: frag})
	return out, stats, nil
}

// fragSize counts the insertable nodes and content bytes of a fragment.
func fragSize(frag *xmldoc.Document) (nodes, contentBytes int) {
	for i := 1; i < len(frag.Nodes); i++ { // skip the document node
		nodes++
		contentBytes += len(frag.Nodes[i].Value)
	}
	return nodes, contentBytes
}

// dirtySuccinct is the size of the contiguous changed region of the
// succinct encoding: 2 structure bits + ~5 bytes of tag/kind/cref per
// node, plus the content bytes.
func dirtySuccinct(nodes, contentBytes int) int {
	return nodes*2/8 + nodes*9 + contentBytes
}

// dirtyInterval is what an interval-encoded relation rewrites: 16 bytes
// per edited node plus 8 bytes (start, end) for every node whose numbers
// shift — all nodes from the edit point to the end of the document.
func dirtyInterval(s *Store, editPoint NodeRef, editedNodes int) int {
	following := s.NodeCount() - int(editPoint)
	if following < 0 {
		following = 0
	}
	return editedNodes*16 + following*8
}

// rebuild copies the store through a Builder, skipping nodes rejected by
// keep (nil keeps everything) and appending fragment children under the
// keys of insertAfter (nil inserts nothing).
func (s *Store) rebuild(keep func(*Builder, NodeRef) bool, insertUnder map[NodeRef]*xmldoc.Document) *Store {
	b := NewBuilder(nil)
	var emit func(n NodeRef)
	emit = func(n NodeRef) {
		if keep != nil && !keep(b, n) {
			return
		}
		switch s.Kind(n) {
		case xmldoc.KindDocument:
			for c := s.FirstChild(n); c != NilRef; c = s.NextSibling(c) {
				emit(c)
			}
			if frag, ok := insertUnder[n]; ok {
				copyFragment(b, frag)
			}
		case xmldoc.KindElement:
			b.StartElement(s.Name(n))
			for c := s.FirstChild(n); c != NilRef; c = s.NextSibling(c) {
				emit(c)
			}
			if frag, ok := insertUnder[n]; ok {
				copyFragment(b, frag)
			}
			b.EndElement()
		case xmldoc.KindAttribute:
			b.Attr(s.Name(n), s.Content(n))
		case xmldoc.KindText:
			b.Text(s.Content(n))
		case xmldoc.KindComment:
			b.Comment(s.Content(n))
		case xmldoc.KindPI:
			b.PI(s.Name(n), s.Content(n))
		}
	}
	emit(0)
	out := b.Build()
	out.URI = s.URI
	return out
}

// copyFragment appends the fragment's top-level nodes into the builder.
func copyFragment(b *Builder, frag *xmldoc.Document) {
	var emit func(n xmldoc.NodeID)
	emit = func(n xmldoc.NodeID) {
		switch frag.Kind(n) {
		case xmldoc.KindDocument:
			for c := frag.Nodes[n].FirstChild; c != xmldoc.Nil; c = frag.Nodes[c].NextSibling {
				emit(c)
			}
		case xmldoc.KindElement:
			b.StartElement(frag.Name(n))
			for c := frag.Nodes[n].FirstChild; c != xmldoc.Nil; c = frag.Nodes[c].NextSibling {
				emit(c)
			}
			b.EndElement()
		case xmldoc.KindAttribute:
			b.Attr(frag.Name(n), frag.Value(n))
		case xmldoc.KindText:
			b.Text(frag.Value(n))
		case xmldoc.KindComment:
			b.Comment(frag.Value(n))
		case xmldoc.KindPI:
			b.PI(frag.Name(n), frag.Value(n))
		}
	}
	emit(frag.Root())
}
