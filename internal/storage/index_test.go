package storage

import (
	"fmt"
	"strings"
	"testing"

	"xqp/internal/vocab"
)

func TestTagIndexMatchesLinearScan(t *testing.T) {
	s := MustLoad(bibXML)
	for _, name := range []string{"book", "author", "last", "title", "price"} {
		sym := s.Vocab.Lookup(name)
		var want []NodeRef
		for i := 0; i < s.NodeCount(); i++ {
			if s.Tag(NodeRef(i)) == sym {
				want = append(want, NodeRef(i))
			}
		}
		got := s.TagRefs(sym)
		if len(got) != len(want) {
			t.Fatalf("%s: index %d refs, scan %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: index and scan disagree at %d", name, i)
			}
		}
	}
	if refs := s.TagRefs(vocab.None); refs != nil {
		t.Fatal("TagRefs(None) not nil")
	}
	if s.Index() != s.Index() {
		t.Fatal("Index not cached")
	}
	if s.Index().SizeBytes() <= 0 {
		t.Fatal("index size not positive")
	}
	if s.Index().Count(s.Vocab.Lookup("book")) != 2 {
		t.Fatal("Count wrong")
	}
}

func TestContentIndexEq(t *testing.T) {
	var b strings.Builder
	b.WriteString("<list>")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "<v>%d</v>", i%10)
	}
	b.WriteString("</list>")
	s := MustLoad(b.String())
	ci := BuildContentIndex(s, s.Vocab.Lookup("v"))
	if ci.Len() != 100 {
		t.Fatalf("indexed %d", ci.Len())
	}
	refs := ci.Eq("7")
	if len(refs) != 10 {
		t.Fatalf("Eq(7) = %d refs, want 10", len(refs))
	}
	for i := range refs {
		if s.StringValue(refs[i]) != "7" {
			t.Fatal("Eq returned wrong node")
		}
		if i > 0 && refs[i-1] >= refs[i] {
			t.Fatal("Eq not in document order")
		}
	}
	if got := ci.Eq("nope"); len(got) != 0 {
		t.Fatalf("Eq(nope) = %v", got)
	}
}

func TestContentIndexRange(t *testing.T) {
	s := MustLoad(`<l><v>apple</v><v>banana</v><v>cherry</v><v>date</v></l>`)
	ci := BuildContentIndex(s, s.Vocab.Lookup("v"))
	refs := ci.Range("b", "d")
	if len(refs) != 2 {
		t.Fatalf("Range(b,d) = %d refs, want 2 (banana, cherry)", len(refs))
	}
	if got := ci.Range("x", "z"); len(got) != 0 {
		t.Fatalf("empty range = %v", got)
	}
	all := ci.Range("", "￿")
	if len(all) != 4 {
		t.Fatalf("full range = %d", len(all))
	}
}

func TestContentIndexAttributes(t *testing.T) {
	s := MustLoad(bibXML)
	ci := BuildContentIndex(s, s.Vocab.Lookup("@year"))
	if ci.Len() != 2 {
		t.Fatalf("year attrs indexed = %d", ci.Len())
	}
	if len(ci.Eq("1994")) != 1 {
		t.Fatal("Eq(1994) wrong")
	}
}
