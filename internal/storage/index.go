package storage

import (
	"sort"
	"strings"

	"xqp/internal/vocab"
)

// TagIndex is the element/attribute tag index over a store: one posting
// list of node refs per tag symbol, in document order. It is the access
// method behind the join-based operators' input streams (the role the
// paper assigns to structure-aware indexes in Section 4).
type TagIndex struct {
	postings map[vocab.Symbol][]NodeRef
}

// BuildTagIndex scans the store once and builds the index.
func BuildTagIndex(s *Store) *TagIndex {
	idx := &TagIndex{postings: make(map[vocab.Symbol][]NodeRef, s.Vocab.Len())}
	for i := range s.tags {
		idx.postings[s.tags[i]] = append(idx.postings[s.tags[i]], NodeRef(i))
	}
	return idx
}

// Refs returns the posting list for a symbol (shared; do not mutate).
func (x *TagIndex) Refs(sym vocab.Symbol) []NodeRef { return x.postings[sym] }

// Count reports the posting-list length for a symbol.
func (x *TagIndex) Count(sym vocab.Symbol) int { return len(x.postings[sym]) }

// SizeBytes estimates the index footprint.
func (x *TagIndex) SizeBytes() int {
	n := 0
	for _, p := range x.postings {
		n += 4*len(p) + 16
	}
	return n
}

// Index returns the store's cached tag index, building it on first use.
// Safe for concurrent readers.
func (s *Store) Index() *TagIndex {
	s.tagIndexOnce.Do(func() { s.tagIndex = BuildTagIndex(s) })
	return s.tagIndex
}

// ContentIndex is a value index over the string values of the nodes with
// a given tag: a sorted (value, ref) list supporting equality and range
// probes in O(log n) — the "content-based index (such as B+ trees)" the
// paper's storage separation enables (Section 4.2).
type ContentIndex struct {
	vals []string
	refs []NodeRef
}

// BuildContentIndex indexes the string values of all nodes with the
// given tag symbol.
func BuildContentIndex(s *Store, sym vocab.Symbol) *ContentIndex {
	refs := s.Index().Refs(sym)
	ci := &ContentIndex{
		vals: make([]string, len(refs)),
		refs: make([]NodeRef, len(refs)),
	}
	copy(ci.refs, refs)
	for i, r := range ci.refs {
		ci.vals[i] = s.StringValue(r)
	}
	sort.Sort(byValue{ci})
	return ci
}

type byValue struct{ ci *ContentIndex }

func (b byValue) Len() int { return len(b.ci.vals) }
func (b byValue) Less(i, j int) bool {
	if c := strings.Compare(b.ci.vals[i], b.ci.vals[j]); c != 0 {
		return c < 0
	}
	return b.ci.refs[i] < b.ci.refs[j]
}
func (b byValue) Swap(i, j int) {
	b.ci.vals[i], b.ci.vals[j] = b.ci.vals[j], b.ci.vals[i]
	b.ci.refs[i], b.ci.refs[j] = b.ci.refs[j], b.ci.refs[i]
}

// Len reports the number of indexed nodes.
func (c *ContentIndex) Len() int { return len(c.refs) }

// Eq returns the refs whose string value equals v, in document order.
func (c *ContentIndex) Eq(v string) []NodeRef {
	lo := sort.SearchStrings(c.vals, v)
	hi := lo
	for hi < len(c.vals) && c.vals[hi] == v {
		hi++
	}
	return sortedRefs(c.refs[lo:hi])
}

// Range returns the refs with lo <= value < hi (string order), in
// document order.
func (c *ContentIndex) Range(lo, hi string) []NodeRef {
	i := sort.SearchStrings(c.vals, lo)
	j := sort.SearchStrings(c.vals, hi)
	return sortedRefs(c.refs[i:j])
}

func sortedRefs(in []NodeRef) []NodeRef {
	out := append([]NodeRef(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
