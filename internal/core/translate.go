package core

import (
	"fmt"

	"xqp/internal/ast"
	"xqp/internal/value"
)

// Translate compiles an XQuery AST into a logical plan. The translation
// is syntax-directed and unoptimized: every path becomes a πs-chain
// (PathOp), every constructor a γ over the extracted SchemaTree, every
// FLWOR an Env-building operator. Package rewrite improves the result.
func Translate(e ast.Expr) (Op, error) {
	switch x := e.(type) {
	case *ast.StringLit:
		return &ConstOp{Seq: value.Singleton(value.Str(x.Val))}, nil
	case *ast.NumberLit:
		if x.IsInt {
			return &ConstOp{Seq: value.Singleton(value.Int(int64(x.Val)))}, nil
		}
		return &ConstOp{Seq: value.Singleton(value.Dbl(x.Val))}, nil
	case *ast.EmptySeq:
		return &ConstOp{}, nil
	case *ast.VarRef:
		return &VarOp{Name: x.Name}, nil
	case *ast.ContextItem:
		return &ContextOp{}, nil
	case *ast.SequenceExpr:
		op := &SeqOp{}
		for _, it := range x.Items {
			c, err := Translate(it)
			if err != nil {
				return nil, err
			}
			op.Items = append(op.Items, c)
		}
		return op, nil
	case *ast.Unary:
		inner, err := Translate(x.X)
		if err != nil {
			return nil, err
		}
		if !x.Neg {
			return inner, nil
		}
		return &NegOp{X: inner}, nil
	case *ast.Binary:
		return translateBinary(x)
	case *ast.FuncCall:
		if (x.Name == "doc" || x.Name == "document") && len(x.Args) <= 1 {
			uri := ""
			if len(x.Args) == 1 {
				lit, ok := x.Args[0].(*ast.StringLit)
				if !ok {
					return nil, fmt.Errorf("core: %s() requires a string literal argument", x.Name)
				}
				uri = lit.Val
			}
			return &DocOp{URI: uri}, nil
		}
		op := &FnOp{Name: x.Name}
		for _, a := range x.Args {
			c, err := Translate(a)
			if err != nil {
				return nil, err
			}
			op.Args = append(op.Args, c)
		}
		return op, nil
	case *ast.If:
		c, err := Translate(x.Cond)
		if err != nil {
			return nil, err
		}
		t, err := Translate(x.Then)
		if err != nil {
			return nil, err
		}
		el, err := Translate(x.Else)
		if err != nil {
			return nil, err
		}
		return &IfOp{Cond: c, Then: t, Else: el}, nil
	case *ast.Quantified:
		op := &QuantOp{Every: x.Kind == ast.QuantEvery}
		for _, b := range x.Bindings {
			in, err := Translate(b.In)
			if err != nil {
				return nil, err
			}
			op.Bindings = append(op.Bindings, Bind{Kind: BindFor, Var: b.Var, Expr: in})
		}
		sat, err := Translate(x.Satisfies)
		if err != nil {
			return nil, err
		}
		op.Satisfies = sat
		return op, nil
	case *ast.FLWOR:
		op := &FLWOROp{}
		for _, c := range x.Clauses {
			in, err := Translate(c.Expr)
			if err != nil {
				return nil, err
			}
			kind := BindFor
			if c.Kind == ast.ClauseLet {
				kind = BindLet
			}
			op.Clauses = append(op.Clauses, Bind{Kind: kind, Var: c.Var, PosVar: c.PosVar, Expr: in})
		}
		if x.Where != nil {
			w, err := Translate(x.Where)
			if err != nil {
				return nil, err
			}
			op.Where = w
		}
		for _, o := range x.OrderBy {
			k, err := Translate(o.Key)
			if err != nil {
				return nil, err
			}
			op.OrderBy = append(op.OrderBy, OrderKey{Key: k, Descending: o.Descending, EmptyLeast: o.EmptyLeast})
		}
		r, err := Translate(x.Return)
		if err != nil {
			return nil, err
		}
		op.Return = r
		return op, nil
	case *ast.PathExpr:
		return translatePath(x)
	case *ast.ElementCtor:
		root, err := schemaFromCtor(x)
		if err != nil {
			return nil, err
		}
		return &ConstructOp{Schema: &SchemaTree{Root: root}}, nil
	case *ast.ComputedCtor:
		return translateComputedCtor(x)
	}
	return nil, fmt.Errorf("core: cannot translate %T", e)
}

func translateBinary(x *ast.Binary) (Op, error) {
	l, err := Translate(x.L)
	if err != nil {
		return nil, err
	}
	r, err := Translate(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ast.OpOr:
		return &LogicOp{Kind: LogicOr, L: l, R: r}, nil
	case ast.OpAnd:
		return &LogicOp{Kind: LogicAnd, L: l, R: r}, nil
	case ast.OpEq:
		return &CompareOp{Op: value.CmpEq, L: l, R: r}, nil
	case ast.OpNe:
		return &CompareOp{Op: value.CmpNe, L: l, R: r}, nil
	case ast.OpLt:
		return &CompareOp{Op: value.CmpLt, L: l, R: r}, nil
	case ast.OpLe:
		return &CompareOp{Op: value.CmpLe, L: l, R: r}, nil
	case ast.OpGt:
		return &CompareOp{Op: value.CmpGt, L: l, R: r}, nil
	case ast.OpGe:
		return &CompareOp{Op: value.CmpGe, L: l, R: r}, nil
	case ast.OpAdd:
		return &ArithOp{Op: value.OpAdd, L: l, R: r}, nil
	case ast.OpSub:
		return &ArithOp{Op: value.OpSub, L: l, R: r}, nil
	case ast.OpMul:
		return &ArithOp{Op: value.OpMul, L: l, R: r}, nil
	case ast.OpDiv:
		return &ArithOp{Op: value.OpDiv, L: l, R: r}, nil
	case ast.OpIDiv:
		return &ArithOp{Op: value.OpIDiv, L: l, R: r}, nil
	case ast.OpMod:
		return &ArithOp{Op: value.OpMod, L: l, R: r}, nil
	case ast.OpUnion:
		return &UnionOp{Kind: SetUnion, L: l, R: r}, nil
	case ast.OpIntersect:
		return &UnionOp{Kind: SetIntersect, L: l, R: r}, nil
	case ast.OpExcept:
		return &UnionOp{Kind: SetExcept, L: l, R: r}, nil
	case ast.OpTo:
		return &RangeOp{L: l, R: r}, nil
	}
	return nil, fmt.Errorf("core: unknown binary operator %v", x.Op)
}

func translatePath(x *ast.PathExpr) (Op, error) {
	var input Op
	switch {
	case x.Base != nil:
		b, err := Translate(x.Base)
		if err != nil {
			return nil, err
		}
		input = b
	case x.Rooted:
		input = &DocOp{URI: ""}
	default:
		input = &ContextOp{}
	}
	if len(x.Steps) == 0 {
		return input, nil
	}
	// Keep the step list (with its predicate ASTs) for the rewriter's
	// pattern builder; the Base is replaced by the translated input.
	path := &ast.PathExpr{Rooted: x.Rooted, Steps: x.Steps}
	return &PathOp{Input: input, Path: path}, nil
}

func translateComputedCtor(x *ast.ComputedCtor) (Op, error) {
	var content Op
	if x.Content != nil {
		c, err := Translate(x.Content)
		if err != nil {
			return nil, err
		}
		content = c
	}
	switch x.Kind {
	case "element":
		node := &SchemaNode{Kind: SchemaElement, Name: x.Name}
		if content != nil {
			node.Children = append(node.Children, &SchemaNode{Kind: SchemaPlaceholder, Expr: content})
		}
		return &ConstructOp{Schema: &SchemaTree{Root: node}}, nil
	case "attribute":
		node := &SchemaNode{Kind: SchemaAttribute, Name: x.Name}
		if content != nil {
			node.Parts = append(node.Parts, SchemaPart{Expr: content})
		}
		return &ConstructOp{Schema: &SchemaTree{Root: node}}, nil
	case "text":
		if content == nil {
			content = &ConstOp{}
		}
		return &FnOp{Name: "#text-ctor", Args: []Op{content}}, nil
	}
	return nil, fmt.Errorf("core: unknown computed constructor %q", x.Kind)
}

// schemaFromCtor extracts the SchemaTree of a direct element constructor
// (the paper's Fig. 1(b) output template).
func schemaFromCtor(e *ast.ElementCtor) (*SchemaNode, error) {
	node := &SchemaNode{Kind: SchemaElement, Name: e.Name}
	for _, a := range e.Attrs {
		attr := &SchemaNode{Kind: SchemaAttribute, Name: a.Name}
		for _, p := range a.Parts {
			if p.Expr == nil {
				attr.Parts = append(attr.Parts, SchemaPart{Lit: p.Lit})
				continue
			}
			op, err := Translate(p.Expr)
			if err != nil {
				return nil, err
			}
			attr.Parts = append(attr.Parts, SchemaPart{Expr: op})
		}
		node.Children = append(node.Children, attr)
	}
	for _, c := range e.Content {
		switch {
		case c.Child != nil:
			child, err := schemaFromCtor(c.Child)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		case c.Expr != nil:
			op, err := Translate(c.Expr)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, &SchemaNode{Kind: SchemaPlaceholder, Expr: op})
		default:
			node.Children = append(node.Children, &SchemaNode{Kind: SchemaText, Text: c.Lit})
		}
	}
	return node, nil
}
