package core

import (
	"fmt"
	"sort"
	"strings"

	"xqp/internal/value"
)

// Env is the paper's Definition 3: a layered, balanced tree of variable
// bindings built by the for/let clauses of a FLWOR expression. Each layer
// is associated with one variable; a for-layer fans out one child per item
// of the bound sequence (one-to-many), a let-layer adds exactly one child
// holding the whole sequence (one-to-one). A root-to-leaf path is one
// total variable binding; the return expression is evaluated once per
// path (Example 1's "13 possible value assignments").
type Env struct {
	// Outer resolves variables of enclosing scopes; may be nil.
	Outer  func(name string) (value.Sequence, bool)
	layers []Layer
	root   *EnvNode
	leaves []*EnvNode
}

// Layer describes one Env layer.
type Layer struct {
	Var    string
	PosVar string
	Kind   BindKind
}

// EnvNode is one binding node; nodes chain upward to form a total binding.
type EnvNode struct {
	parent *EnvNode
	layer  int
	val    value.Sequence
	pos    int // 1-based position within the for-sequence
	kids   int // child count (for String/statistics)
}

// NewEnv returns an empty environment.
func NewEnv(outer func(string) (value.Sequence, bool)) *Env {
	root := &EnvNode{layer: -1}
	return &Env{Outer: outer, root: root, leaves: []*EnvNode{root}}
}

// Binding is a total (partial, during construction) variable binding: a
// leaf of the Env tree.
type Binding struct {
	env  *Env
	node *EnvNode
}

// Lookup resolves a variable in this binding, falling back to the
// enclosing scope.
func (b Binding) Lookup(name string) (value.Sequence, bool) {
	for n := b.node; n != nil && n.layer >= 0; n = n.parent {
		l := b.env.layers[n.layer]
		if l.Var == name {
			return n.val, true
		}
		if l.PosVar != "" && l.PosVar == name {
			return value.Singleton(value.Int(int64(n.pos))), true
		}
	}
	if b.env.Outer != nil {
		return b.env.Outer(name)
	}
	return nil, false
}

// ExtendFor adds a for-layer: eval is called once per current leaf (with
// that leaf's partial binding) and each item of the result becomes a new
// child. Leaves whose sequence is empty are pruned (no total binding).
func (e *Env) ExtendFor(varName, posVar string, eval func(Binding) (value.Sequence, error)) error {
	layer := len(e.layers)
	e.layers = append(e.layers, Layer{Var: varName, PosVar: posVar, Kind: BindFor})
	var next []*EnvNode
	for _, leaf := range e.leaves {
		seq, err := eval(Binding{e, leaf})
		if err != nil {
			return err
		}
		leaf.kids = len(seq)
		for i, item := range seq {
			next = append(next, &EnvNode{
				parent: leaf,
				layer:  layer,
				val:    value.Singleton(item),
				pos:    i + 1,
			})
		}
	}
	e.leaves = next
	return nil
}

// ExtendLet adds a let-layer: each leaf gets exactly one child holding the
// whole sequence.
func (e *Env) ExtendLet(varName string, eval func(Binding) (value.Sequence, error)) error {
	layer := len(e.layers)
	e.layers = append(e.layers, Layer{Var: varName, Kind: BindLet})
	var next []*EnvNode
	for _, leaf := range e.leaves {
		seq, err := eval(Binding{e, leaf})
		if err != nil {
			return err
		}
		leaf.kids = 1
		next = append(next, &EnvNode{parent: leaf, layer: layer, val: seq, pos: 1})
	}
	e.leaves = next
	return nil
}

// Filter drops total bindings for which pred is false (the where clause,
// a boolean-formula layer in the paper's terms).
func (e *Env) Filter(pred func(Binding) (bool, error)) error {
	var kept []*EnvNode
	for _, leaf := range e.leaves {
		ok, err := pred(Binding{e, leaf})
		if err != nil {
			return err
		}
		if ok {
			kept = append(kept, leaf)
		}
	}
	e.leaves = kept
	return nil
}

// SortBy reorders the total bindings by the given keys. Keys are
// evaluated per binding; the sort is stable, preserving binding order for
// equal keys.
func (e *Env) SortBy(keys []func(Binding) (value.Sequence, error), descending []bool, emptyLeast []bool) error {
	type rec struct {
		leaf *EnvNode
		keys []value.Sequence
	}
	recs := make([]rec, len(e.leaves))
	for i, leaf := range e.leaves {
		recs[i].leaf = leaf
		recs[i].keys = make([]value.Sequence, len(keys))
		for k, f := range keys {
			v, err := f(Binding{e, leaf})
			if err != nil {
				return err
			}
			recs[i].keys[k] = value.Atomize(v)
		}
	}
	var sortErr error
	sort.SliceStable(recs, func(i, j int) bool {
		for k := range keys {
			c, err := compareKeys(recs[i].keys[k], recs[j].keys[k], emptyLeast[k])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c == 0 {
				continue
			}
			if descending[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range recs {
		e.leaves[i] = recs[i].leaf
	}
	return sortErr
}

// compareKeys orders two order-by key values (-1, 0, +1). Empty sequences
// order least or greatest per the spec flag; numeric pairs compare
// numerically, otherwise string comparison applies.
func compareKeys(a, b value.Sequence, emptyLeast bool) (int, error) {
	if len(a) == 0 || len(b) == 0 {
		switch {
		case len(a) == 0 && len(b) == 0:
			return 0, nil
		case len(a) == 0:
			if emptyLeast {
				return -1, nil
			}
			return 1, nil
		default:
			if emptyLeast {
				return 1, nil
			}
			return -1, nil
		}
	}
	if len(a) > 1 || len(b) > 1 {
		return 0, &value.TypeError{Msg: "order-by key is not a singleton"}
	}
	x, y := a[0], b[0]
	if value.IsNumeric(x) || value.IsNumeric(y) {
		fx, fy := value.NumberOf(x), value.NumberOf(y)
		switch {
		case fx < fy:
			return -1, nil
		case fx > fy:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return strings.Compare(x.String(), y.String()), nil
}

// Paths returns the current total bindings in order.
func (e *Env) Paths() []Binding {
	out := make([]Binding, len(e.leaves))
	for i, leaf := range e.leaves {
		out[i] = Binding{e, leaf}
	}
	return out
}

// Size reports the number of total bindings (leaves).
func (e *Env) Size() int { return len(e.leaves) }

// Depth reports the number of layers.
func (e *Env) Depth() int { return len(e.layers) }

// String renders the environment layer by layer (cf. the paper's Fig. 2).
func (e *Env) String() string {
	var b strings.Builder
	for i, l := range e.layers {
		kw := "for"
		if l.Kind == BindLet {
			kw = "let"
		}
		fmt.Fprintf(&b, "layer %d: %s $%s", i, kw, l.Var)
		if l.PosVar != "" {
			fmt.Fprintf(&b, " at $%s", l.PosVar)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total bindings: %d\n", len(e.leaves))
	return b.String()
}
