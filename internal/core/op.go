// Package core defines the paper's logical algebra (Section 3): the sorts
// List, NestedList, Tree, PatternGraph, SchemaTree and Env, and the
// operators of Table 1 —
//
//	structure-based: σs (selection on tag), ⋈s (structural join),
//	                 πs (tree navigation along an axis);
//	value-based:     σv (selection on values), ⋈v (value join);
//	hybrid:          τ  (tree pattern matching: Tree × PatternGraph →
//	                     NestedList),
//	                 γ  (construction: NestedList × SchemaTree → Tree).
//
// The algebra appears in two forms: as a library of operator functions
// over the runtime sorts (algebra.go, matching the signatures of Table 1),
// and as a logical plan language (this file) that queries are translated
// into (translate.go) and that the rewriter (package rewrite) and the
// physical executor (package exec) consume. τ operators sit at the bottom
// of plans, γ at the top, with list-transforming operators in between,
// exactly as Section 3.2 prescribes.
package core

import (
	"fmt"
	"strings"

	"xqp/internal/ast"
	"xqp/internal/pattern"
	"xqp/internal/value"
)

// Op is a logical plan operator.
type Op interface {
	// Children returns the operator's input sub-plans.
	Children() []Op
	// Label renders the operator's own node (without inputs).
	Label() string
}

// ConstOp yields a constant sequence.
type ConstOp struct{ Seq value.Sequence }

func (o *ConstOp) Children() []Op { return nil }
func (o *ConstOp) Label() string {
	if len(o.Seq) == 0 {
		return "const ()"
	}
	return fmt.Sprintf("const %s", o.Seq)
}

// VarOp references a variable binding from the environment.
type VarOp struct{ Name string }

func (o *VarOp) Children() []Op { return nil }
func (o *VarOp) Label() string  { return "$" + o.Name }

// ContextOp yields the context item.
type ContextOp struct{}

func (o *ContextOp) Children() []Op { return nil }
func (o *ContextOp) Label() string  { return "context-item" }

// DocOp yields the root of a named document (resolved via the executor's
// catalog); URI "" means the default document.
type DocOp struct{ URI string }

func (o *DocOp) Children() []Op { return nil }
func (o *DocOp) Label() string  { return fmt.Sprintf("doc(%q)", o.URI) }

// PathOp evaluates a path expression step-by-step (a chain of πs/σs
// operators) against its input. It is what the translator emits for every
// path; the rewriter fuses eligible PathOps into TPMOps.
type PathOp struct {
	Input Op
	Path  *ast.PathExpr
}

func (o *PathOp) Children() []Op { return []Op{o.Input} }
func (o *PathOp) Label() string  { return fmt.Sprintf("πs-chain %s", o.Path) }

// TPMOp is the τ operator: match a pattern graph against the input nodes
// (the pattern anchor binds to each input node; for rooted graphs the
// input is the document root).
type TPMOp struct {
	Input Op
	Graph *pattern.Graph
	// Residual predicates that could not be folded into the graph are
	// kept by the rewriter as a σv above this operator, never here.
}

func (o *TPMOp) Children() []Op { return []Op{o.Input} }
func (o *TPMOp) Label() string {
	return fmt.Sprintf("τ pattern{%s} joins=%d", strings.TrimSpace(strings.ReplaceAll(o.Graph.String(), "\n", " ")), o.Graph.Partition().JoinCount())
}

// SeqOp concatenates its inputs (the comma operator).
type SeqOp struct{ Items []Op }

func (o *SeqOp) Children() []Op { return o.Items }
func (o *SeqOp) Label() string  { return "seq" }

// ArithOp applies an arithmetic operator.
type ArithOp struct {
	Op   value.ArithOp
	L, R Op
}

func (o *ArithOp) Children() []Op { return []Op{o.L, o.R} }
func (o *ArithOp) Label() string {
	names := [...]string{"+", "-", "*", "div", "idiv", "mod"}
	return "arith " + names[o.Op]
}

// NegOp is unary minus.
type NegOp struct{ X Op }

func (o *NegOp) Children() []Op { return []Op{o.X} }
func (o *NegOp) Label() string  { return "neg" }

// CompareOp is a general comparison (σv / ⋈v building block).
type CompareOp struct {
	Op   value.CmpOp
	L, R Op
}

func (o *CompareOp) Children() []Op { return []Op{o.L, o.R} }
func (o *CompareOp) Label() string  { return "compare " + o.Op.String() }

// LogicKind selects and/or.
type LogicKind uint8

// Logic kinds.
const (
	LogicAnd LogicKind = iota
	LogicOr
)

// LogicOp is boolean conjunction/disjunction over effective boolean
// values.
type LogicOp struct {
	Kind LogicKind
	L, R Op
}

func (o *LogicOp) Children() []Op { return []Op{o.L, o.R} }
func (o *LogicOp) Label() string {
	if o.Kind == LogicAnd {
		return "and"
	}
	return "or"
}

// SetKind selects a node-set operation.
type SetKind uint8

// Node-set operations (doc order, dedup).
const (
	SetUnion SetKind = iota
	SetIntersect
	SetExcept
)

// UnionOp is a node-set operation: union, intersect or except.
type UnionOp struct {
	Kind SetKind
	L, R Op
}

func (o *UnionOp) Children() []Op { return []Op{o.L, o.R} }
func (o *UnionOp) Label() string {
	return [...]string{"union", "intersect", "except"}[o.Kind]
}

// RangeOp is the integer range constructor (to).
type RangeOp struct{ L, R Op }

func (o *RangeOp) Children() []Op { return []Op{o.L, o.R} }
func (o *RangeOp) Label() string  { return "range" }

// IfOp is a conditional.
type IfOp struct{ Cond, Then, Else Op }

func (o *IfOp) Children() []Op { return []Op{o.Cond, o.Then, o.Else} }
func (o *IfOp) Label() string  { return "if" }

// FnOp is a built-in function call.
type FnOp struct {
	Name string
	Args []Op
}

func (o *FnOp) Children() []Op { return o.Args }
func (o *FnOp) Label() string  { return "fn:" + o.Name }

// BindKind distinguishes for/let clauses.
type BindKind uint8

// Binding kinds.
const (
	BindFor BindKind = iota
	BindLet
)

// Bind is one for/let clause of a FLWOR operator.
type Bind struct {
	Kind   BindKind
	Var    string
	PosVar string // for-clauses only; "" when absent
	Expr   Op
}

// OrderKey is one order-by key.
type OrderKey struct {
	Key        Op
	Descending bool
	EmptyLeast bool
}

// FLWOROp builds an Env from its clauses (Definition 3) and evaluates the
// return expression once per total variable binding.
type FLWOROp struct {
	Clauses []Bind
	Where   Op // nil when absent
	OrderBy []OrderKey
	Return  Op
}

func (o *FLWOROp) Children() []Op {
	var out []Op
	for _, c := range o.Clauses {
		out = append(out, c.Expr)
	}
	if o.Where != nil {
		out = append(out, o.Where)
	}
	for _, k := range o.OrderBy {
		out = append(out, k.Key)
	}
	out = append(out, o.Return)
	return out
}

func (o *FLWOROp) Label() string {
	var parts []string
	for _, c := range o.Clauses {
		kw := "for"
		if c.Kind == BindLet {
			kw = "let"
		}
		parts = append(parts, fmt.Sprintf("%s $%s", kw, c.Var))
	}
	s := "flwor [" + strings.Join(parts, ", ") + "]"
	if o.Where != nil {
		s += " where"
	}
	if len(o.OrderBy) > 0 {
		s += " order"
	}
	return s
}

// QuantOp is some/every quantification.
type QuantOp struct {
	Every     bool
	Bindings  []Bind // Kind is always BindFor
	Satisfies Op
}

func (o *QuantOp) Children() []Op {
	var out []Op
	for _, b := range o.Bindings {
		out = append(out, b.Expr)
	}
	return append(out, o.Satisfies)
}

func (o *QuantOp) Label() string {
	if o.Every {
		return "every"
	}
	return "some"
}

// ConstructOp is the γ operator: build new tree content following a
// SchemaTree whose placeholders are sub-plans.
type ConstructOp struct{ Schema *SchemaTree }

func (o *ConstructOp) Children() []Op { return o.Schema.placeholderOps() }
func (o *ConstructOp) Label() string  { return "γ " + o.Schema.Summary() }

// Explain renders a plan as an indented tree.
func Explain(op Op) string {
	var b strings.Builder
	var walk func(op Op, depth int)
	walk = func(op Op, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(op.Label())
		b.WriteByte('\n')
		for _, c := range op.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// ExplainWith renders the plan like Explain, appending annotate's output
// (when non-empty) after each operator label. The static analyzer uses it
// to show inferred type/cardinality annotations per operator.
func ExplainWith(op Op, annotate func(Op) string) string {
	var b strings.Builder
	var walk func(op Op, depth int)
	walk = func(op Op, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(op.Label())
		if s := annotate(op); s != "" {
			b.WriteString("  [" + s + "]")
		}
		b.WriteByte('\n')
		for _, c := range op.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// Walk visits op and all descendants pre-order; returning false prunes.
func Walk(op Op, f func(Op) bool) {
	if op == nil || !f(op) {
		return
	}
	for _, c := range op.Children() {
		Walk(c, f)
	}
}

// Count returns the number of operators in the plan matching pred.
func Count(op Op, pred func(Op) bool) int {
	n := 0
	Walk(op, func(o Op) bool {
		if pred(o) {
			n++
		}
		return true
	})
	return n
}
