package core

import (
	"fmt"

	"xqp/internal/ast"
	"xqp/internal/join"
	"xqp/internal/nok"
	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/value"
	"xqp/internal/xmldoc"
)

// This file implements the operators of Table 1 as functions over the
// runtime sorts, matching the paper's signatures:
//
//	σs : List → List                       SelectTag
//	⋈s : List × List → List               StructuralJoin
//	πs : List → NestedList                 Navigate / NavigateStep
//	σv : List → List                       SelectValue
//	⋈v : List × List → List               ValueJoin
//	τ  : Tree × PatternGraph → NestedList  TPM
//	γ  : NestedList × SchemaTree → Tree    BuildTree

// SelectTag is σs: keep the node items whose tag name is name.
func SelectTag(list value.Sequence, name string) value.Sequence {
	var out value.Sequence
	for _, it := range list {
		n, ok := it.(value.Node)
		if !ok {
			continue
		}
		if n.Store.Name(n.Ref) == name {
			out = append(out, it)
		}
	}
	return out
}

// SelectValue is σv: keep the items satisfying the comparison against a
// literal (atomizing nodes).
func SelectValue(list value.Sequence, op value.CmpOp, lit value.Item) value.Sequence {
	var out value.Sequence
	for _, it := range list {
		ok, err := value.CompareGeneral(op, value.Singleton(it), value.Singleton(lit))
		if err == nil && ok {
			out = append(out, it)
		}
	}
	return out
}

// StructuralJoin is ⋈s: return the nodes of descs that stand in the given
// structural relation to some node of ancs, in document order. Both lists
// must contain nodes of the same store.
func StructuralJoin(ancs, descs value.Sequence, rel pattern.Rel) (value.Sequence, error) {
	aStream, st, err := streamOf(ancs)
	if err != nil {
		return nil, err
	}
	dStream, st2, err := streamOf(descs)
	if err != nil {
		return nil, err
	}
	if st == nil || st2 == nil {
		return nil, nil
	}
	if st != st2 {
		return nil, &value.TypeError{Msg: "structural join across documents"}
	}
	out := join.StackTreeDescendants(aStream, dStream, rel)
	res := make(value.Sequence, len(out))
	for i, e := range out {
		res[i] = value.Node{Store: st, Ref: e.Ref}
	}
	return res, nil
}

// StructuralSemiJoin returns the nodes of ancs that have at least one
// node of descs below them in the given relation (existence predicates).
func StructuralSemiJoin(ancs, descs value.Sequence, rel pattern.Rel) (value.Sequence, error) {
	aStream, st, err := streamOf(ancs)
	if err != nil {
		return nil, err
	}
	dStream, st2, err := streamOf(descs)
	if err != nil {
		return nil, err
	}
	if st == nil || st2 == nil {
		return nil, nil
	}
	if st != st2 {
		return nil, &value.TypeError{Msg: "structural join across documents"}
	}
	out := join.StackTreeAncestors(aStream, dStream, rel)
	res := make(value.Sequence, len(out))
	for i, e := range out {
		res[i] = value.Node{Store: st, Ref: e.Ref}
	}
	return res, nil
}

func streamOf(list value.Sequence) (join.Stream, *storage.Store, error) {
	var st *storage.Store
	var refs []storage.NodeRef
	for _, it := range list {
		n, ok := it.(value.Node)
		if !ok {
			return nil, nil, &value.TypeError{Msg: fmt.Sprintf("structural join over %s item", value.ItemKind(it))}
		}
		if st == nil {
			st = n.Store
		} else if st != n.Store {
			return nil, nil, &value.TypeError{Msg: "structural join across documents"}
		}
		refs = append(refs, n.Ref)
	}
	if st == nil {
		return nil, nil, nil
	}
	return join.ContextStream(st, refs), st, nil
}

// ValueJoin is ⋈v: return the items of l whose atomized value compares
// successfully with some item of r (a value-based semi-join, the form the
// plans use).
func ValueJoin(l, r value.Sequence, op value.CmpOp) (value.Sequence, error) {
	var out value.Sequence
	for _, x := range l {
		ok, err := value.CompareGeneral(op, value.Singleton(x), r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, x)
		}
	}
	return out, nil
}

// TPM is τ: match the pattern graph against the document tree and return
// the output matches nested by their structural relationships.
func TPM(st *storage.Store, g *pattern.Graph, contexts []storage.NodeRef) (value.NestedList, error) {
	return nok.MatchNested(st, g, contexts)
}

// NavigateStep is πs for one location step (axis + node test, without
// predicates): map each context node through the axis and return the
// result in document order without duplicates.
func NavigateStep(list value.Sequence, axis ast.Axis, test ast.NodeTest) (value.Sequence, error) {
	var out value.Sequence
	for _, it := range list {
		n, ok := it.(value.Node)
		if !ok {
			return nil, &value.TypeError{Msg: fmt.Sprintf("path step over %s item", value.ItemKind(it))}
		}
		collectAxis(n.Store, n.Ref, axis, test, &out)
	}
	return value.DocOrder(out)
}

// collectAxis appends the nodes reachable from n through the axis that
// pass the test.
func collectAxis(st *storage.Store, n storage.NodeRef, axis ast.Axis, test ast.NodeTest, out *value.Sequence) {
	emit := func(m storage.NodeRef) {
		if nodePassesTest(st, m, axis, test) {
			*out = append(*out, value.Node{Store: st, Ref: m})
		}
	}
	switch axis {
	case ast.AxisChild:
		for c := st.FirstChild(n); c != storage.NilRef; c = st.NextSibling(c) {
			if st.Kind(c) != xmldoc.KindAttribute {
				emit(c)
			}
		}
	case ast.AxisAttribute:
		for c := st.FirstChild(n); c != storage.NilRef; c = st.NextSibling(c) {
			if st.Kind(c) == xmldoc.KindAttribute {
				emit(c)
			}
		}
	case ast.AxisDescendant, ast.AxisDescendantOrSelf:
		if axis == ast.AxisDescendantOrSelf {
			emit(n)
		}
		end := n + storage.NodeRef(st.SubtreeSize(n))
		for d := n + 1; d < end; d++ {
			emit(d)
		}
	case ast.AxisSelf:
		emit(n)
	case ast.AxisParent:
		if p := st.Parent(n); p != storage.NilRef {
			emit(p)
		}
	case ast.AxisAncestor, ast.AxisAncestorOrSelf:
		if axis == ast.AxisAncestorOrSelf {
			emit(n)
		}
		for p := st.Parent(n); p != storage.NilRef; p = st.Parent(p) {
			emit(p)
		}
	case ast.AxisFollowingSibling:
		for s := st.NextSibling(n); s != storage.NilRef; s = st.NextSibling(s) {
			if st.Kind(s) != xmldoc.KindAttribute {
				emit(s)
			}
		}
	case ast.AxisPrecedingSibling:
		for s := st.PrevSibling(n); s != storage.NilRef; s = st.PrevSibling(s) {
			if st.Kind(s) != xmldoc.KindAttribute {
				emit(s)
			}
		}
	}
}

// nodePassesTest applies a node test in the context of an axis (name
// tests select elements, except on the attribute axis).
func nodePassesTest(st *storage.Store, n storage.NodeRef, axis ast.Axis, test ast.NodeTest) bool {
	if test.Kind != ast.TestName {
		return pattern.MatchesKindTest(st, n, test)
	}
	if axis == ast.AxisAttribute {
		if st.Kind(n) != xmldoc.KindAttribute {
			return false
		}
	} else {
		if st.Kind(n) != xmldoc.KindElement {
			return false
		}
	}
	return test.Name == "*" || st.Name(n) == test.Name
}

// BuildTree is γ: materialize a SchemaTree into a new document, calling
// eval to produce the value of each placeholder. Node-valued placeholder
// items are deep-copied; atomic items become text (space-separated when
// adjacent).
func BuildTree(schema *SchemaTree, eval func(Op) (value.Sequence, error)) (*xmldoc.Document, error) {
	b := xmldoc.NewBuilder()
	if schema != nil && schema.Root != nil {
		if err := buildNode(b, schema.Root, eval); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

func buildNode(b *xmldoc.Builder, n *SchemaNode, eval func(Op) (value.Sequence, error)) error {
	switch n.Kind {
	case SchemaElement:
		b.OpenElement(n.Name)
		for _, c := range n.Children {
			if err := buildNode(b, c, eval); err != nil {
				return err
			}
		}
		b.CloseElement()
	case SchemaAttribute:
		val := ""
		for _, p := range n.Parts {
			if p.Expr == nil {
				val += p.Lit
				continue
			}
			seq, err := eval(p.Expr)
			if err != nil {
				return err
			}
			val += value.Atomize(seq).String()
		}
		b.Attr(n.Name, val)
	case SchemaText:
		b.Text(n.Text)
	case SchemaPlaceholder:
		seq, err := eval(n.Expr)
		if err != nil {
			return err
		}
		if err := emitSequence(b, seq); err != nil {
			return err
		}
	case SchemaIf:
		seq, err := eval(n.Expr)
		if err != nil {
			return err
		}
		ok, err := value.EBV(seq)
		if err != nil {
			return err
		}
		if ok {
			for _, c := range n.Children {
				if err := buildNode(b, c, eval); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// emitSequence writes a sequence into element content per the XQuery
// constructor rules: nodes copy as subtrees, adjacent atomics join with
// single spaces.
func emitSequence(b *xmldoc.Builder, seq value.Sequence) error {
	pendingAtomic := false
	for _, it := range seq {
		switch v := it.(type) {
		case value.Node:
			emitStoreNode(b, v.Store, v.Ref)
			pendingAtomic = false
		default:
			if pendingAtomic {
				b.Text(" ")
			}
			b.Text(it.String())
			pendingAtomic = true
		}
	}
	return nil
}

// emitStoreNode deep-copies a store node into the builder.
func emitStoreNode(b *xmldoc.Builder, st *storage.Store, n storage.NodeRef) {
	switch st.Kind(n) {
	case xmldoc.KindElement:
		b.OpenElement(st.Name(n))
		for c := st.FirstChild(n); c != storage.NilRef; c = st.NextSibling(c) {
			emitStoreNode(b, st, c)
		}
		b.CloseElement()
	case xmldoc.KindAttribute:
		b.Attr(st.Name(n), st.Content(n))
	case xmldoc.KindText:
		b.Text(st.Content(n))
	case xmldoc.KindComment:
		b.Comment(st.Content(n))
	case xmldoc.KindPI:
		b.PI(st.Name(n), st.Content(n))
	case xmldoc.KindDocument:
		for c := st.FirstChild(n); c != storage.NilRef; c = st.NextSibling(c) {
			emitStoreNode(b, st, c)
		}
	}
}
