package core

import (
	"fmt"
	"strings"
)

// SchemaTree is the paper's Definition 2: the labeled tree extracted from
// constructor expressions that specifies the schema of the output
// document. Constructor nodes carry element names; placeholder leaves
// carry the (algebraic) expression whose value replaces them; if-nodes
// guard their subtree with a boolean expression.
type SchemaTree struct {
	Root *SchemaNode
}

// SchemaNodeKind classifies schema-tree nodes.
type SchemaNodeKind uint8

const (
	// SchemaElement is a constructor node labeled with an element name.
	// Attribute children precede content children.
	SchemaElement SchemaNodeKind = iota
	// SchemaAttribute is an attribute; its value is the concatenation of
	// Parts (literal or placeholder).
	SchemaAttribute
	// SchemaText is a literal text leaf (Text field).
	SchemaText
	// SchemaPlaceholder is a leaf labeled with an expression whose value
	// (nodes or atomics) replaces it.
	SchemaPlaceholder
	// SchemaIf is a node whose children are emitted only when Expr's
	// effective boolean value holds (the paper's if-node).
	SchemaIf
)

// SchemaPart is one fragment of an attribute value template.
type SchemaPart struct {
	Lit  string
	Expr Op // non-nil for placeholder parts
}

// SchemaNode is one node of a SchemaTree.
type SchemaNode struct {
	Kind     SchemaNodeKind
	Name     string       // element/attribute name
	Text     string       // literal text (SchemaText)
	Expr     Op           // placeholder or if condition
	Parts    []SchemaPart // attribute value template (SchemaAttribute)
	Children []*SchemaNode
}

// Summary renders a short one-line description for plan explain output.
func (t *SchemaTree) Summary() string {
	if t == nil || t.Root == nil {
		return "<empty>"
	}
	var b strings.Builder
	var walk func(n *SchemaNode)
	walk = func(n *SchemaNode) {
		switch n.Kind {
		case SchemaElement:
			fmt.Fprintf(&b, "<%s", n.Name)
			rest := n.Children
			for len(rest) > 0 && rest[0].Kind == SchemaAttribute {
				fmt.Fprintf(&b, " @%s", rest[0].Name)
				rest = rest[1:]
			}
			b.WriteString(">")
			for _, c := range rest {
				walk(c)
			}
			fmt.Fprintf(&b, "</%s>", n.Name)
		case SchemaAttribute:
			fmt.Fprintf(&b, "@%s", n.Name)
		case SchemaText:
			b.WriteString("#text")
		case SchemaPlaceholder:
			b.WriteString("{·}")
		case SchemaIf:
			b.WriteString("if{·}")
		}
	}
	walk(t.Root)
	return b.String()
}

// placeholderOps collects the sub-plans referenced by the schema tree, in
// document order, so plan walks see them as children of the γ operator.
func (t *SchemaTree) placeholderOps() []Op {
	if t == nil || t.Root == nil {
		return nil
	}
	var out []Op
	var walk func(n *SchemaNode)
	walk = func(n *SchemaNode) {
		for i := range n.Parts {
			if n.Parts[i].Expr != nil {
				out = append(out, n.Parts[i].Expr)
			}
		}
		if n.Expr != nil {
			out = append(out, n.Expr)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// PlaceholderCount reports the number of placeholder expressions.
func (t *SchemaTree) PlaceholderCount() int { return len(t.placeholderOps()) }
