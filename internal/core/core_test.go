package core

import (
	"strings"
	"testing"

	"xqp/internal/ast"
	"xqp/internal/parser"
	"xqp/internal/pattern"
	"xqp/internal/storage"
	"xqp/internal/value"
)

const bibXML = `<bib>
  <book year="1994"><title>T1</title><author><last>Stevens</last></author><price>65.95</price></book>
  <book year="2000"><title>T2</title><author><last>Abiteboul</last></author><author><last>Buneman</last></author><price>39.95</price></book>
</bib>`

func nodesOf(st *storage.Store, refs []storage.NodeRef) value.Sequence {
	out := make(value.Sequence, len(refs))
	for i, r := range refs {
		out[i] = value.Node{Store: st, Ref: r}
	}
	return out
}

// --- Table 1 operator functions ---

func TestSelectTag(t *testing.T) {
	st := storage.MustLoad(bibXML)
	all := nodesOf(st, st.ElementRefs("book"))
	all = append(all, nodesOf(st, st.ElementRefs("title"))...)
	got := SelectTag(all, "title")
	if len(got) != 2 {
		t.Fatalf("σs(title) = %d, want 2", len(got))
	}
	if len(SelectTag(value.Sequence{value.Int(1)}, "x")) != 0 {
		t.Fatal("σs over atomic should select nothing")
	}
}

func TestSelectValue(t *testing.T) {
	st := storage.MustLoad(bibXML)
	prices := nodesOf(st, st.ElementRefs("price"))
	got := SelectValue(prices, value.CmpLt, value.Int(50))
	if len(got) != 1 {
		t.Fatalf("σv(price < 50) = %d, want 1", len(got))
	}
}

func TestStructuralJoinOps(t *testing.T) {
	st := storage.MustLoad(bibXML)
	books := nodesOf(st, st.ElementRefs("book"))
	lasts := nodesOf(st, st.ElementRefs("last"))
	got, err := StructuralJoin(books, lasts, pattern.RelDescendant)
	if err != nil || len(got) != 3 {
		t.Fatalf("⋈s desc = %v (%v)", got, err)
	}
	semi, err := StructuralSemiJoin(books, lasts, pattern.RelDescendant)
	if err != nil || len(semi) != 2 {
		t.Fatalf("semi ⋈s = %v (%v)", semi, err)
	}
	if _, err := StructuralJoin(value.Sequence{value.Int(1)}, lasts, pattern.RelChild); err == nil {
		t.Fatal("⋈s over atomics did not error")
	}
	// Empty inputs are fine.
	if got, err := StructuralJoin(nil, lasts, pattern.RelChild); err != nil || got != nil {
		t.Fatalf("empty join = %v (%v)", got, err)
	}
}

func TestValueJoin(t *testing.T) {
	l := value.Sequence{value.Int(1), value.Int(5), value.Int(9)}
	r := value.Sequence{value.Int(5), value.Int(9)}
	got, err := ValueJoin(l, r, value.CmpEq)
	if err != nil || len(got) != 2 {
		t.Fatalf("⋈v = %v (%v)", got, err)
	}
}

func TestTPMOperator(t *testing.T) {
	st := storage.MustLoad(bibXML)
	e := parser.MustParse("//book[price]/author")
	g, err := pattern.FromPath(e.(*ast.PathExpr))
	if err != nil {
		t.Fatal(err)
	}
	nl, err := TPM(st, g, []storage.NodeRef{st.Root()})
	if err != nil {
		t.Fatal(err)
	}
	if nl.Size() != 3 {
		t.Fatalf("τ matches = %d, want 3", nl.Size())
	}
}

func TestNavigateStepAxes(t *testing.T) {
	st := storage.MustLoad(bibXML)
	bib := nodesOf(st, []storage.NodeRef{st.DocumentElement()})
	books, err := NavigateStep(bib, ast.AxisChild, ast.NodeTest{Kind: ast.TestName, Name: "book"})
	if err != nil || len(books) != 2 {
		t.Fatalf("child::book = %d (%v)", len(books), err)
	}
	// descendant
	lasts, err := NavigateStep(bib, ast.AxisDescendant, ast.NodeTest{Kind: ast.TestName, Name: "last"})
	if err != nil || len(lasts) != 3 {
		t.Fatalf("descendant::last = %d", len(lasts))
	}
	// parent
	up, err := NavigateStep(books, ast.AxisParent, ast.NodeTest{Kind: ast.TestName, Name: "*"})
	if err != nil || len(up) != 1 {
		t.Fatalf("parent = %d", len(up))
	}
	// ancestor-or-self from last
	anc, err := NavigateStep(lasts[:1], ast.AxisAncestorOrSelf, ast.NodeTest{Kind: ast.TestNode})
	if err != nil || len(anc) != 5 {
		t.Fatalf("ancestor-or-self = %d, want 5 (last,author,book,bib,root)", len(anc))
	}
	// attribute
	attrs, err := NavigateStep(books, ast.AxisAttribute, ast.NodeTest{Kind: ast.TestName, Name: "year"})
	if err != nil || len(attrs) != 2 {
		t.Fatalf("@year = %d", len(attrs))
	}
	// siblings
	titles, _ := NavigateStep(books[:1], ast.AxisChild, ast.NodeTest{Kind: ast.TestName, Name: "title"})
	foll, err := NavigateStep(titles, ast.AxisFollowingSibling, ast.NodeTest{Kind: ast.TestName, Name: "*"})
	if err != nil || len(foll) != 2 {
		t.Fatalf("following-sibling = %d, want 2 (author, price)", len(foll))
	}
	prec, err := NavigateStep(foll[len(foll)-1:], ast.AxisPrecedingSibling, ast.NodeTest{Kind: ast.TestName, Name: "*"})
	if err != nil || len(prec) != 2 {
		t.Fatalf("preceding-sibling = %d, want 2", len(prec))
	}
	// text()
	txt, err := NavigateStep(titles, ast.AxisChild, ast.NodeTest{Kind: ast.TestText})
	if err != nil || len(txt) != 1 {
		t.Fatalf("text() = %d", len(txt))
	}
	// self
	self, err := NavigateStep(books, ast.AxisSelf, ast.NodeTest{Kind: ast.TestName, Name: "book"})
	if err != nil || len(self) != 2 {
		t.Fatalf("self::book = %d", len(self))
	}
	// atomics error
	if _, err := NavigateStep(value.Sequence{value.Int(1)}, ast.AxisChild, ast.NodeTest{Kind: ast.TestNode}); err == nil {
		t.Fatal("πs over atomic did not error")
	}
}

// --- Env (Definition 3 / Example 1) ---

func TestEnvExample1(t *testing.T) {
	// The paper's Example 1: for $a in E1, $b in E2 let $c := E3, $d := E4
	// for $e in E5 return E6, instantiated to yield exactly 13 total
	// bindings: |E5| per (a,b) pair = 3,2,2,2,3,1 over pairs
	// (a1,b11),(a1,b12),(a2,b21),(a3,b31),(a3,b32),(a3,b33).
	env := NewEnv(nil)
	e1 := value.Sequence{value.Str("a1"), value.Str("a2"), value.Str("a3")}
	e2 := map[string]value.Sequence{
		"a1": {value.Str("b11"), value.Str("b12")},
		"a2": {value.Str("b21")},
		"a3": {value.Str("b31"), value.Str("b32"), value.Str("b33")},
	}
	e5 := map[string]int{"b11": 3, "b12": 2, "b21": 2, "b31": 2, "b32": 3, "b33": 1}
	if err := env.ExtendFor("a", "", func(Binding) (value.Sequence, error) { return e1, nil }); err != nil {
		t.Fatal(err)
	}
	if err := env.ExtendFor("b", "", func(b Binding) (value.Sequence, error) {
		a, _ := b.Lookup("a")
		return e2[a.String()], nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := env.ExtendLet("c", func(b Binding) (value.Sequence, error) {
		return value.Singleton(value.Str("c")), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := env.ExtendLet("d", func(b Binding) (value.Sequence, error) {
		return value.Sequence{value.Str("d1"), value.Str("d2")}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := env.ExtendFor("e", "", func(b Binding) (value.Sequence, error) {
		bv, _ := b.Lookup("b")
		n := e5[bv.String()]
		var out value.Sequence
		for i := 0; i < n; i++ {
			out = append(out, value.Int(int64(i)))
		}
		return out, nil
	}); err != nil {
		t.Fatal(err)
	}
	if env.Size() != 13 {
		t.Fatalf("total bindings = %d, want 13 (the paper's Example 1)", env.Size())
	}
	if env.Depth() != 5 {
		t.Fatalf("layers = %d, want 5", env.Depth())
	}
	// let binds the whole sequence.
	d, ok := env.Paths()[0].Lookup("d")
	if !ok || len(d) != 2 {
		t.Fatalf("$d = %v", d)
	}
	if !strings.Contains(env.String(), "total bindings: 13") {
		t.Fatalf("env string = %s", env.String())
	}
}

func TestEnvFilterAndSort(t *testing.T) {
	env := NewEnv(nil)
	seq := value.Sequence{value.Int(3), value.Int(1), value.Int(2)}
	if err := env.ExtendFor("x", "i", func(Binding) (value.Sequence, error) { return seq, nil }); err != nil {
		t.Fatal(err)
	}
	// Positional variable.
	x0 := env.Paths()[0]
	if i, ok := x0.Lookup("i"); !ok || i[0] != value.Int(1) {
		t.Fatalf("$i = %v", i)
	}
	if err := env.Filter(func(b Binding) (bool, error) {
		x, _ := b.Lookup("x")
		return value.NumberOf(x[0]) >= 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	if env.Size() != 2 {
		t.Fatalf("filtered size = %d", env.Size())
	}
	err := env.SortBy(
		[]func(Binding) (value.Sequence, error){func(b Binding) (value.Sequence, error) {
			x, _ := b.Lookup("x")
			return x, nil
		}},
		[]bool{false}, []bool{true},
	)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := env.Paths()[0].Lookup("x")
	if x[0] != value.Int(2) {
		t.Fatalf("sorted first = %v", x)
	}
}

func TestEnvOuterScope(t *testing.T) {
	outer := func(name string) (value.Sequence, bool) {
		if name == "g" {
			return value.Singleton(value.Str("G")), true
		}
		return nil, false
	}
	env := NewEnv(outer)
	if err := env.ExtendFor("x", "", func(b Binding) (value.Sequence, error) {
		g, ok := b.Lookup("g")
		if !ok {
			t.Fatal("outer variable invisible during extension")
		}
		return g, nil
	}); err != nil {
		t.Fatal(err)
	}
	v, ok := env.Paths()[0].Lookup("g")
	if !ok || v[0].String() != "G" {
		t.Fatalf("outer lookup = %v", v)
	}
	if _, ok := env.Paths()[0].Lookup("missing"); ok {
		t.Fatal("missing var found")
	}
}

func TestEnvEmptyForPrunes(t *testing.T) {
	env := NewEnv(nil)
	_ = env.ExtendFor("x", "", func(Binding) (value.Sequence, error) {
		return value.Sequence{value.Int(1), value.Int(2)}, nil
	})
	_ = env.ExtendFor("y", "", func(b Binding) (value.Sequence, error) {
		x, _ := b.Lookup("x")
		if x[0] == value.Int(1) {
			return nil, nil // no bindings under x=1
		}
		return value.Singleton(value.Int(9)), nil
	})
	if env.Size() != 1 {
		t.Fatalf("size = %d, want 1", env.Size())
	}
}

// --- Translation ---

func TestTranslateShapes(t *testing.T) {
	cases := []struct {
		src  string
		want string // operator type fragment expected in Explain
	}{
		{`/bib/book`, "πs-chain"},
		{`1 + 2`, "arith"},
		{`"x"`, "const"},
		{`$v`, "$v"},
		{`count(/a)`, "fn:count"},
		{`for $x in /a return $x`, "flwor"},
		{`if (1) then 2 else 3`, "if"},
		{`some $x in /a satisfies $x`, "some"},
		{`<r>{1}</r>`, "γ"},
		{`/a | /b`, "union"},
		{`1 to 5`, "range"},
		{`doc("x")/a`, `doc("x")`},
	}
	for _, c := range cases {
		e, err := parser.Parse(c.src)
		if err != nil {
			t.Fatal(err)
		}
		op, err := Translate(e)
		if err != nil {
			t.Fatalf("translate %q: %v", c.src, err)
		}
		if !strings.Contains(Explain(op), c.want) {
			t.Errorf("Explain(%q) missing %q:\n%s", c.src, c.want, Explain(op))
		}
	}
}

func TestTranslateDocRequiresLiteral(t *testing.T) {
	e, err := parser.Parse(`doc($x)/a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(e); err == nil {
		t.Fatal("doc($x) translated, want error")
	}
}

func TestSchemaTreeExtraction(t *testing.T) {
	e, err := parser.Parse(`<results><result id="{$i}">{$t} text</result></results>`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Translate(e)
	if err != nil {
		t.Fatal(err)
	}
	ctor, ok := op.(*ConstructOp)
	if !ok {
		t.Fatalf("translated to %T", op)
	}
	if ctor.Schema.PlaceholderCount() != 2 {
		t.Fatalf("placeholders = %d, want 2", ctor.Schema.PlaceholderCount())
	}
	sum := ctor.Schema.Summary()
	if !strings.Contains(sum, "<results>") || !strings.Contains(sum, "@id") {
		t.Fatalf("summary = %s", sum)
	}
}

func TestWalkAndCount(t *testing.T) {
	e, _ := parser.Parse(`for $b in /bib/book where $b/price < 50 return <r>{$b/title}</r>`)
	op, err := Translate(e)
	if err != nil {
		t.Fatal(err)
	}
	paths := Count(op, func(o Op) bool { _, ok := o.(*PathOp); return ok })
	if paths != 3 {
		t.Fatalf("PathOps = %d, want 3", paths)
	}
	total := Count(op, func(Op) bool { return true })
	if total < 8 {
		t.Fatalf("plan ops = %d, implausibly few", total)
	}
}

func TestBuildTreeGamma(t *testing.T) {
	st := storage.MustLoad(bibXML)
	titleRefs := st.ElementRefs("title")
	schema := &SchemaTree{Root: &SchemaNode{
		Kind: SchemaElement, Name: "out",
		Children: []*SchemaNode{
			{Kind: SchemaAttribute, Name: "n", Parts: []SchemaPart{{Lit: "v"}}},
			{Kind: SchemaText, Text: "x"},
			{Kind: SchemaPlaceholder, Expr: &ConstOp{Seq: nodesOf(st, titleRefs[:1])}},
			{Kind: SchemaIf, Expr: &ConstOp{Seq: value.Singleton(value.Bool(false))},
				Children: []*SchemaNode{{Kind: SchemaText, Text: "hidden"}}},
		},
	}}
	doc, err := BuildTree(schema, func(op Op) (value.Sequence, error) {
		return op.(*ConstOp).Seq, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := doc.XMLString(doc.Root())
	want := `<out n="v">x<title>T1</title></out>`
	if got != want {
		t.Fatalf("γ output = %s, want %s", got, want)
	}
}

func TestBuildTreeAtomicSpacing(t *testing.T) {
	schema := &SchemaTree{Root: &SchemaNode{
		Kind: SchemaElement, Name: "o",
		Children: []*SchemaNode{
			{Kind: SchemaPlaceholder, Expr: &ConstOp{Seq: value.Sequence{value.Int(1), value.Int(2)}}},
		},
	}}
	doc, err := BuildTree(schema, func(op Op) (value.Sequence, error) {
		return op.(*ConstOp).Seq, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.XMLString(doc.Root()); got != "<o>1 2</o>" {
		t.Fatalf("spacing = %s", got)
	}
}
