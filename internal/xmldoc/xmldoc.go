// Package xmldoc provides the in-memory XML data model used throughout the
// system: labeled, ordered, rooted trees (the paper's sort Tree), stored in
// a flat pre-order arena.
//
// Besides plain DOM navigation, every node carries its interval encoding
// (start, end, level) in the style of DeHaan et al. (SIGMOD 2003), which is
// both the substrate of the extended-relational baseline and the constant-
// time structural-relationship test used by the join operators:
//
//	a is an ancestor of d  ⇔  a.start < d.start ∧ d.end < a.end
//	a is the parent of d   ⇔  ancestor ∧ a.level+1 == d.level
//
// The arena is in document order, so NodeIDs compare as document positions.
package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// NodeID indexes a node inside a Document arena. The document node is
// always NodeID 0. NodeIDs increase in document order.
type NodeID int32

// Nil is the absent node.
const Nil NodeID = -1

// Kind classifies nodes following the XQuery data model.
type Kind uint8

const (
	// KindDocument is the synthetic root above the document element.
	KindDocument Kind = iota
	// KindElement is an element node.
	KindElement
	// KindAttribute is an attribute node; attributes precede element
	// children in the arena and are skipped by child traversal.
	KindAttribute
	// KindText is a text node.
	KindText
	// KindComment is a comment node.
	KindComment
	// KindPI is a processing-instruction node.
	KindPI
)

func (k Kind) String() string {
	switch k {
	case KindDocument:
		return "document"
	case KindElement:
		return "element"
	case KindAttribute:
		return "attribute"
	case KindText:
		return "text"
	case KindComment:
		return "comment"
	case KindPI:
		return "processing-instruction"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Node is one tree node. Fields are exported for cheap access by the
// physical operators; treat them as read-only outside this package.
type Node struct {
	Kind  Kind
	Name  string // element/attribute/PI target name
	Value string // text/comment/attribute content

	Parent      NodeID
	FirstChild  NodeID // first child including attribute nodes
	NextSibling NodeID

	// Interval encoding.
	Start, End int32
	Level      int32
}

// Document is an XML tree in a pre-order arena.
type Document struct {
	Nodes []Node
	// URI is an optional document identifier (e.g. a file name).
	URI string
}

// Root returns the document node's id (always 0).
func (d *Document) Root() NodeID { return 0 }

// DocumentElement returns the top-level element, or Nil for an empty
// document.
func (d *Document) DocumentElement() NodeID {
	for c := d.Nodes[0].FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
		if d.Nodes[c].Kind == KindElement {
			return c
		}
	}
	return Nil
}

// Kind returns the kind of node n.
func (d *Document) Kind(n NodeID) Kind { return d.Nodes[n].Kind }

// Name returns the name of node n ("" for unnamed kinds).
func (d *Document) Name(n NodeID) string { return d.Nodes[n].Name }

// Value returns the literal value of node n (text/comment/attribute).
func (d *Document) Value(n NodeID) string { return d.Nodes[n].Value }

// Parent returns n's parent or Nil.
func (d *Document) Parent(n NodeID) NodeID { return d.Nodes[n].Parent }

// FirstChild returns n's first non-attribute child or Nil.
func (d *Document) FirstChild(n NodeID) NodeID {
	c := d.Nodes[n].FirstChild
	for c != Nil && d.Nodes[c].Kind == KindAttribute {
		c = d.Nodes[c].NextSibling
	}
	return c
}

// NextSibling returns n's next non-attribute sibling or Nil.
func (d *Document) NextSibling(n NodeID) NodeID {
	c := d.Nodes[n].NextSibling
	for c != Nil && d.Nodes[c].Kind == KindAttribute {
		c = d.Nodes[c].NextSibling
	}
	return c
}

// Children returns n's non-attribute children in document order.
func (d *Document) Children(n NodeID) []NodeID {
	var out []NodeID
	for c := d.FirstChild(n); c != Nil; c = d.NextSibling(c) {
		out = append(out, c)
	}
	return out
}

// Attributes returns n's attribute nodes in document order.
func (d *Document) Attributes(n NodeID) []NodeID {
	var out []NodeID
	for c := d.Nodes[n].FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
		if d.Nodes[c].Kind == KindAttribute {
			out = append(out, c)
		}
	}
	return out
}

// Attribute returns the attribute of n named name, or Nil.
func (d *Document) Attribute(n NodeID, name string) NodeID {
	for c := d.Nodes[n].FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
		if d.Nodes[c].Kind == KindAttribute && d.Nodes[c].Name == name {
			return c
		}
	}
	return Nil
}

// IsAncestor reports whether a is a proper ancestor of x, in O(1) via the
// interval encoding.
func (d *Document) IsAncestor(a, x NodeID) bool {
	na, nx := &d.Nodes[a], &d.Nodes[x]
	return na.Start < nx.Start && nx.End < na.End
}

// IsParent reports whether p is the parent of x, in O(1).
func (d *Document) IsParent(p, x NodeID) bool {
	return d.IsAncestor(p, x) && d.Nodes[p].Level+1 == d.Nodes[x].Level
}

// StringValue returns the concatenation of all descendant text (the XPath
// string-value) of n; for attribute/text nodes, their own value.
func (d *Document) StringValue(n NodeID) string {
	switch d.Nodes[n].Kind {
	case KindText, KindAttribute, KindComment, KindPI:
		return d.Nodes[n].Value
	}
	var b strings.Builder
	d.appendText(n, &b)
	return b.String()
}

func (d *Document) appendText(n NodeID, b *strings.Builder) {
	for c := d.Nodes[n].FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
		switch d.Nodes[c].Kind {
		case KindText:
			b.WriteString(d.Nodes[c].Value)
		case KindElement:
			d.appendText(c, b)
		}
	}
}

// Walk visits n and every descendant (including attributes) in document
// order, calling f with each node and its depth below n. Returning false
// from f prunes the subtree.
func (d *Document) Walk(n NodeID, f func(NodeID, int) bool) {
	d.walk(n, 0, f)
}

func (d *Document) walk(n NodeID, depth int, f func(NodeID, int) bool) {
	if !f(n, depth) {
		return
	}
	for c := d.Nodes[n].FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
		d.walk(c, depth+1, f)
	}
}

// Descendants returns all element descendants of n in document order.
func (d *Document) Descendants(n NodeID) []NodeID {
	var out []NodeID
	d.Walk(n, func(x NodeID, depth int) bool {
		if depth > 0 && d.Nodes[x].Kind == KindElement {
			out = append(out, x)
		}
		return d.Nodes[x].Kind == KindElement || d.Nodes[x].Kind == KindDocument
	})
	return out
}

// ElementCount reports the number of element nodes.
func (d *Document) ElementCount() int {
	n := 0
	for i := range d.Nodes {
		if d.Nodes[i].Kind == KindElement {
			n++
		}
	}
	return n
}

// SizeBytes estimates the arena's in-memory footprint (experiment E1).
func (d *Document) SizeBytes() int {
	n := 0
	for i := range d.Nodes {
		n += 64 + len(d.Nodes[i].Name) + len(d.Nodes[i].Value)
	}
	return n
}

// --- Builder ---

// Builder assembles a Document in document order; it is what the parser and
// the γ construction operator use.
type Builder struct {
	doc      *Document
	stack    []NodeID
	lastChld []NodeID // last child appended per stack entry
	counter  int32
}

// NewBuilder returns a Builder with the document node already open.
func NewBuilder() *Builder {
	b := &Builder{doc: &Document{}}
	b.doc.Nodes = append(b.doc.Nodes, Node{
		Kind: KindDocument, Parent: Nil, FirstChild: Nil, NextSibling: Nil,
		Start: b.counter, Level: 0,
	})
	b.counter++
	b.stack = append(b.stack, 0)
	b.lastChld = append(b.lastChld, Nil)
	return b
}

func (b *Builder) appendNode(n Node) NodeID {
	top := b.stack[len(b.stack)-1]
	id := NodeID(len(b.doc.Nodes))
	n.Parent = top
	n.FirstChild = Nil
	n.NextSibling = Nil
	n.Level = int32(len(b.stack) - 1 + 1)
	b.doc.Nodes = append(b.doc.Nodes, n)
	if last := b.lastChld[len(b.lastChld)-1]; last == Nil {
		b.doc.Nodes[top].FirstChild = id
	} else {
		b.doc.Nodes[last].NextSibling = id
	}
	b.lastChld[len(b.lastChld)-1] = id
	return id
}

// OpenElement starts an element named name.
func (b *Builder) OpenElement(name string) NodeID {
	id := b.appendNode(Node{Kind: KindElement, Name: name, Start: b.counter})
	b.counter++
	b.stack = append(b.stack, id)
	b.lastChld = append(b.lastChld, Nil)
	return id
}

// CloseElement ends the innermost open element.
func (b *Builder) CloseElement() {
	id := b.stack[len(b.stack)-1]
	if id == 0 {
		panic("xmldoc: CloseElement with no open element")
	}
	b.doc.Nodes[id].End = b.counter
	b.counter++
	b.stack = b.stack[:len(b.stack)-1]
	b.lastChld = b.lastChld[:len(b.lastChld)-1]
}

// Attr adds an attribute to the innermost open element. It must be called
// before any child content is added.
func (b *Builder) Attr(name, value string) NodeID {
	id := b.appendNode(Node{Kind: KindAttribute, Name: name, Value: value, Start: b.counter})
	b.doc.Nodes[id].End = b.counter
	b.counter++
	return id
}

// Text adds a text node; empty strings are ignored.
func (b *Builder) Text(s string) NodeID {
	if s == "" {
		return Nil
	}
	// Merge with a preceding text sibling, as the data model requires.
	if last := b.lastChld[len(b.lastChld)-1]; last != Nil && b.doc.Nodes[last].Kind == KindText {
		b.doc.Nodes[last].Value += s
		return last
	}
	id := b.appendNode(Node{Kind: KindText, Value: s, Start: b.counter})
	b.doc.Nodes[id].End = b.counter
	b.counter++
	return id
}

// Comment adds a comment node.
func (b *Builder) Comment(s string) NodeID {
	id := b.appendNode(Node{Kind: KindComment, Value: s, Start: b.counter})
	b.doc.Nodes[id].End = b.counter
	b.counter++
	return id
}

// PI adds a processing-instruction node.
func (b *Builder) PI(target, data string) NodeID {
	id := b.appendNode(Node{Kind: KindPI, Name: target, Value: data, Start: b.counter})
	b.doc.Nodes[id].End = b.counter
	b.counter++
	return id
}

// CopySubtree deep-copies the subtree rooted at n of src under the innermost
// open element; attribute nodes copy as attributes. Used by γ when a
// placeholder evaluates to existing nodes.
func (b *Builder) CopySubtree(src *Document, n NodeID) {
	switch src.Nodes[n].Kind {
	case KindElement:
		b.OpenElement(src.Nodes[n].Name)
		for c := src.Nodes[n].FirstChild; c != Nil; c = src.Nodes[c].NextSibling {
			b.CopySubtree(src, c)
		}
		b.CloseElement()
	case KindAttribute:
		b.Attr(src.Nodes[n].Name, src.Nodes[n].Value)
	case KindText:
		b.Text(src.Nodes[n].Value)
	case KindComment:
		b.Comment(src.Nodes[n].Value)
	case KindPI:
		b.PI(src.Nodes[n].Name, src.Nodes[n].Value)
	case KindDocument:
		for c := src.Nodes[n].FirstChild; c != Nil; c = src.Nodes[c].NextSibling {
			b.CopySubtree(src, c)
		}
	}
}

// Build finishes the document. Any still-open elements are closed.
func (b *Builder) Build() *Document {
	for len(b.stack) > 1 {
		b.CloseElement()
	}
	b.doc.Nodes[0].End = b.counter
	return b.doc
}

// --- Parsing ---

// Options controls parsing.
type Options struct {
	// PreserveWhitespace keeps text nodes that consist solely of
	// whitespace. The default (false) strips them, matching the usual
	// document-processing mode of XQuery engines and keeping pattern
	// matching over data-centric documents deterministic.
	PreserveWhitespace bool
}

// Parse reads an XML document from r with default options (whitespace-only
// text stripped).
func Parse(r io.Reader) (*Document, error) {
	return ParseWith(r, Options{})
}

// ParseWith reads an XML document from r.
func ParseWith(r io.Reader, opts Options) (*Document, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder()
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.OpenElement(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attr(a.Name.Local, a.Value)
			}
			depth++
		case xml.EndElement:
			b.CloseElement()
			depth--
		case xml.CharData:
			if depth > 0 {
				if !opts.PreserveWhitespace && len(strings.TrimSpace(string(t))) == 0 {
					continue
				}
				b.Text(string(t))
			}
		case xml.Comment:
			if depth > 0 {
				b.Comment(string(t))
			}
		case xml.ProcInst:
			if depth > 0 {
				b.PI(t.Target, string(t.Inst))
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("xmldoc: parse: %d unclosed elements", depth)
	}
	doc := b.Build()
	if doc.DocumentElement() == Nil {
		return nil, fmt.Errorf("xmldoc: parse: no document element")
	}
	return doc, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses s and panics on error; intended for tests and examples.
func MustParse(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// --- Serialization ---

// WriteXML serializes the subtree rooted at n to w.
func (d *Document) WriteXML(w io.Writer, n NodeID) error {
	var b strings.Builder
	d.appendXML(&b, n)
	_, err := io.WriteString(w, b.String())
	return err
}

// XMLString serializes the subtree rooted at n to a string.
func (d *Document) XMLString(n NodeID) string {
	var b strings.Builder
	d.appendXML(&b, n)
	return b.String()
}

func (d *Document) appendXML(b *strings.Builder, n NodeID) {
	node := &d.Nodes[n]
	switch node.Kind {
	case KindDocument:
		for c := node.FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
			d.appendXML(b, c)
		}
	case KindElement:
		b.WriteByte('<')
		b.WriteString(node.Name)
		for c := node.FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
			if d.Nodes[c].Kind != KindAttribute {
				break
			}
			b.WriteByte(' ')
			b.WriteString(d.Nodes[c].Name)
			b.WriteString(`="`)
			escapeInto(b, d.Nodes[c].Value, true)
			b.WriteByte('"')
		}
		first := d.FirstChild(n)
		if first == Nil {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		for c := first; c != Nil; c = d.NextSibling(c) {
			d.appendXML(b, c)
		}
		b.WriteString("</")
		b.WriteString(node.Name)
		b.WriteByte('>')
	case KindText:
		escapeInto(b, node.Value, false)
	case KindComment:
		b.WriteString("<!--")
		b.WriteString(node.Value)
		b.WriteString("-->")
	case KindPI:
		b.WriteString("<?")
		b.WriteString(node.Name)
		b.WriteByte(' ')
		b.WriteString(node.Value)
		b.WriteString("?>")
	case KindAttribute:
		b.WriteString(node.Name)
		b.WriteString(`="`)
		escapeInto(b, node.Value, true)
		b.WriteByte('"')
	}
}

func escapeInto(b *strings.Builder, s string, attr bool) {
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			if attr {
				b.WriteString("&quot;")
			} else {
				b.WriteRune(r)
			}
		default:
			b.WriteRune(r)
		}
	}
}

// DeepEqual reports whether the subtrees (d1, n1) and (d2, n2) are equal as
// labeled ordered trees (ignoring interval numbers); used by differential
// tests between evaluation strategies.
func DeepEqual(d1 *Document, n1 NodeID, d2 *Document, n2 NodeID) bool {
	a, b := &d1.Nodes[n1], &d2.Nodes[n2]
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	c1, c2 := a.FirstChild, b.FirstChild
	for c1 != Nil && c2 != Nil {
		if !DeepEqual(d1, c1, d2, c2) {
			return false
		}
		c1, c2 = d1.Nodes[c1].NextSibling, d2.Nodes[c2].NextSibling
	}
	return c1 == Nil && c2 == Nil
}
