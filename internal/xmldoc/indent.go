package xmldoc

import "strings"

// IndentXML serializes the subtree rooted at n with two-space
// indentation. Elements with only text content stay on one line; mixed
// content is emitted unindented to preserve its text exactly.
func (d *Document) IndentXML(n NodeID) string {
	var b strings.Builder
	d.indentInto(&b, n, 0)
	return b.String()
}

func (d *Document) indentInto(b *strings.Builder, n NodeID, depth int) {
	node := &d.Nodes[n]
	pad := strings.Repeat("  ", depth)
	switch node.Kind {
	case KindDocument:
		for c := node.FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
			d.indentInto(b, c, depth)
		}
	case KindElement:
		b.WriteString(pad)
		b.WriteByte('<')
		b.WriteString(node.Name)
		for c := node.FirstChild; c != Nil; c = d.Nodes[c].NextSibling {
			if d.Nodes[c].Kind != KindAttribute {
				break
			}
			b.WriteByte(' ')
			b.WriteString(d.Nodes[c].Name)
			b.WriteString(`="`)
			escapeInto(b, d.Nodes[c].Value, true)
			b.WriteByte('"')
		}
		first := d.FirstChild(n)
		if first == Nil {
			b.WriteString("/>\n")
			return
		}
		// Text-only content prints inline; any element child forces
		// block layout; mixed content falls back to exact one-line form.
		hasElem, hasText := false, false
		for c := first; c != Nil; c = d.NextSibling(c) {
			switch d.Nodes[c].Kind {
			case KindText:
				hasText = true
			default:
				hasElem = true
			}
		}
		switch {
		case !hasElem:
			b.WriteByte('>')
			for c := first; c != Nil; c = d.NextSibling(c) {
				escapeInto(b, d.Nodes[c].Value, false)
			}
			b.WriteString("</")
			b.WriteString(node.Name)
			b.WriteString(">\n")
		case hasText:
			// Mixed content: exact serialization on one line.
			b.WriteByte('>')
			for c := first; c != Nil; c = d.NextSibling(c) {
				d.appendXML(b, c)
			}
			b.WriteString("</")
			b.WriteString(node.Name)
			b.WriteString(">\n")
		default:
			b.WriteString(">\n")
			for c := first; c != Nil; c = d.NextSibling(c) {
				d.indentInto(b, c, depth+1)
			}
			b.WriteString(pad)
			b.WriteString("</")
			b.WriteString(node.Name)
			b.WriteString(">\n")
		}
	case KindText:
		b.WriteString(pad)
		escapeInto(b, node.Value, false)
		b.WriteByte('\n')
	case KindComment:
		b.WriteString(pad)
		b.WriteString("<!--")
		b.WriteString(node.Value)
		b.WriteString("-->\n")
	case KindPI:
		b.WriteString(pad)
		b.WriteString("<?")
		b.WriteString(node.Name)
		b.WriteByte(' ')
		b.WriteString(node.Value)
		b.WriteString("?>\n")
	case KindAttribute:
		b.WriteString(pad)
		b.WriteString(node.Name)
		b.WriteString(`="`)
		escapeInto(b, node.Value, true)
		b.WriteString("\"\n")
	}
}
