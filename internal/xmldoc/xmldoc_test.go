package xmldoc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const bibXML = `<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>39.95</price>
  </book>
</bib>`

func TestParseBasicShape(t *testing.T) {
	d := MustParse(bibXML)
	root := d.DocumentElement()
	if root == Nil || d.Name(root) != "bib" {
		t.Fatalf("document element = %v (%q)", root, d.Name(root))
	}
	books := d.Children(root)
	if len(books) != 2 {
		t.Fatalf("children(bib) = %d, want 2", len(books))
	}
	b0 := books[0]
	if d.Name(b0) != "book" {
		t.Fatalf("first child name = %q", d.Name(b0))
	}
	attrs := d.Attributes(b0)
	if len(attrs) != 1 || d.Name(attrs[0]) != "year" || d.Value(attrs[0]) != "1994" {
		t.Fatalf("book attrs wrong: %v", attrs)
	}
	if a := d.Attribute(b0, "year"); a == Nil || d.Value(a) != "1994" {
		t.Fatalf("Attribute(year) wrong")
	}
	if a := d.Attribute(b0, "missing"); a != Nil {
		t.Fatalf("Attribute(missing) = %v", a)
	}
	var titles []string
	for _, c := range d.Children(b0) {
		if d.Name(c) == "title" {
			titles = append(titles, d.StringValue(c))
		}
	}
	if len(titles) != 1 || titles[0] != "TCP/IP Illustrated" {
		t.Fatalf("titles = %v", titles)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "not xml at <<", "<a><b></a></b>", "<a>", "just text"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestIntervalEncodingInvariants(t *testing.T) {
	d := MustParse(bibXML)
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Start > n.End {
			t.Fatalf("node %d: start %d > end %d", i, n.Start, n.End)
		}
		if n.Parent != Nil {
			p := &d.Nodes[n.Parent]
			if !(p.Start < n.Start && n.End < p.End) {
				t.Fatalf("node %d: interval not inside parent", i)
			}
			if p.Level+1 != n.Level {
				t.Fatalf("node %d: level %d, parent level %d", i, n.Level, p.Level)
			}
		}
	}
	// Siblings have disjoint intervals in order.
	root := d.DocumentElement()
	kids := d.Children(root)
	for i := 1; i < len(kids); i++ {
		if d.Nodes[kids[i-1]].End >= d.Nodes[kids[i]].Start {
			t.Fatalf("sibling intervals overlap")
		}
	}
}

func TestIsAncestorIsParent(t *testing.T) {
	d := MustParse(bibXML)
	root := d.DocumentElement()
	book := d.Children(root)[0]
	var last NodeID = Nil
	d.Walk(book, func(n NodeID, depth int) bool {
		if d.Nodes[n].Kind == KindElement && d.Name(n) == "last" {
			last = n
		}
		return true
	})
	if last == Nil {
		t.Fatal("no <last> found")
	}
	if !d.IsAncestor(book, last) || !d.IsAncestor(root, last) {
		t.Error("IsAncestor false negative")
	}
	if d.IsAncestor(last, book) || d.IsAncestor(book, book) {
		t.Error("IsAncestor false positive")
	}
	author := d.Parent(last)
	if !d.IsParent(author, last) {
		t.Error("IsParent false negative")
	}
	if d.IsParent(book, last) {
		t.Error("IsParent true for grandparent")
	}
}

func TestStringValueConcatenatesDescendants(t *testing.T) {
	d := MustParse(`<a>x<b>y</b>z</a>`)
	if got := d.StringValue(d.DocumentElement()); got != "xyz" {
		t.Fatalf("StringValue = %q, want xyz", got)
	}
}

func TestTextMerging(t *testing.T) {
	// Entity references split CharData tokens; adjacent text must merge.
	d := MustParse(`<a>one&amp;two</a>`)
	kids := d.Children(d.DocumentElement())
	if len(kids) != 1 || d.Nodes[kids[0]].Kind != KindText {
		t.Fatalf("expected single merged text node, got %d children", len(kids))
	}
	if d.Value(kids[0]) != "one&two" {
		t.Fatalf("merged text = %q", d.Value(kids[0]))
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	docs := []string{
		`<a/>`,
		`<a b="1" c="x&quot;y"/>`,
		`<a>text &amp; more</a>`,
		`<r><x>1</x><y z="w"><!--note--><?pi data?></y></r>`,
		bibXML,
	}
	for _, src := range docs {
		d1 := MustParse(src)
		out := d1.XMLString(d1.Root())
		d2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\noutput: %s", src, err, out)
		}
		if !DeepEqual(d1, d1.Root(), d2, d2.Root()) {
			t.Fatalf("round trip changed tree for %q -> %s", src, out)
		}
	}
}

func TestBuilderProgrammatic(t *testing.T) {
	b := NewBuilder()
	b.OpenElement("results")
	b.OpenElement("result")
	b.Attr("id", "1")
	b.Text("hello")
	b.CloseElement()
	b.CloseElement()
	d := b.Build()
	want := `<results><result id="1">hello</result></results>`
	if got := d.XMLString(d.Root()); got != want {
		t.Fatalf("built XML = %s, want %s", got, want)
	}
}

func TestBuilderAutoClose(t *testing.T) {
	b := NewBuilder()
	b.OpenElement("a")
	b.OpenElement("b")
	d := b.Build()
	if got := d.XMLString(d.Root()); got != `<a><b/></a>` {
		t.Fatalf("auto-closed XML = %s", got)
	}
}

func TestCopySubtree(t *testing.T) {
	src := MustParse(bibXML)
	book := src.Children(src.DocumentElement())[1]
	b := NewBuilder()
	b.OpenElement("copy")
	b.CopySubtree(src, book)
	b.CloseElement()
	d := b.Build()
	got := d.Children(d.DocumentElement())
	if len(got) != 1 || !DeepEqual(src, book, d, got[0]) {
		t.Fatal("CopySubtree did not preserve the subtree")
	}
}

func TestDescendants(t *testing.T) {
	d := MustParse(bibXML)
	desc := d.Descendants(d.Root())
	if len(desc) != d.ElementCount() {
		t.Fatalf("Descendants(root) = %d, ElementCount = %d", len(desc), d.ElementCount())
	}
	for i := 1; i < len(desc); i++ {
		if desc[i-1] >= desc[i] {
			t.Fatal("descendants not in document order")
		}
	}
}

// randomDoc builds a random document for property tests.
func randomDoc(r *rand.Rand, maxNodes int) *Document {
	b := NewBuilder()
	names := []string{"a", "b", "c", "d"}
	var build func(depth, budget int) int
	build = func(depth, budget int) int {
		used := 1
		b.OpenElement(names[r.Intn(len(names))])
		if r.Intn(3) == 0 {
			b.Attr("k", "v")
		}
		for used < budget && depth < 8 && r.Intn(3) != 0 {
			if r.Intn(4) == 0 {
				b.Text("t")
			} else {
				used += build(depth+1, budget-used)
			}
		}
		b.CloseElement()
		return used
	}
	build(0, maxNodes)
	return b.Build()
}

// Property: serialize ∘ parse is identity on random documents.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1 := randomDoc(r, 60)
		d2, err := ParseString(d1.XMLString(d1.Root()))
		if err != nil {
			return false
		}
		return DeepEqual(d1, d1.Root(), d2, d2.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: document order of NodeIDs agrees with interval starts.
func TestDocumentOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r, 80)
		for i := 1; i < len(d.Nodes); i++ {
			if d.Nodes[i-1].Start >= d.Nodes[i].Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParseSkipsTopLevelMisc(t *testing.T) {
	d := MustParse("<?xml version=\"1.0\"?>\n<!-- head -->\n<a>x</a>\n")
	if d.Name(d.DocumentElement()) != "a" {
		t.Fatal("document element not found after prolog")
	}
	if len(d.Children(d.Root())) != 1 {
		t.Fatalf("document node has %d children, want 1", len(d.Children(d.Root())))
	}
}

func TestWriteXML(t *testing.T) {
	d := MustParse(`<a>x</a>`)
	var sb strings.Builder
	if err := d.WriteXML(&sb, d.Root()); err != nil {
		t.Fatal(err)
	}
	if sb.String() != `<a>x</a>` {
		t.Fatalf("WriteXML = %q", sb.String())
	}
}

func BenchmarkParseBib(b *testing.B) {
	big := "<bib>" + strings.Repeat(bibXML[5:len(bibXML)-6], 50) + "</bib>"
	b.SetBytes(int64(len(big)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(big); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIndentXML(t *testing.T) {
	d := MustParse(`<r><a k="1"><b>text</b><c/></a><mixed>x<i>y</i>z</mixed></r>`)
	got := d.IndentXML(d.Root())
	want := `<r>
  <a k="1">
    <b>text</b>
    <c/>
  </a>
  <mixed>x<i>y</i>z</mixed>
</r>
`
	if got != want {
		t.Fatalf("IndentXML:\n%s\nwant:\n%s", got, want)
	}
	// Indented output reparses to the same tree for element-only content.
	d2, err := ParseString(got)
	if err != nil {
		t.Fatal(err)
	}
	if !DeepEqual(d, d.Root(), d2, d2.Root()) {
		t.Fatal("indented round trip changed the tree")
	}
}
