package parser

import (
	"testing"
	"unicode/utf8"
)

// FuzzParseQuery throws arbitrary input at the parser. Invariants:
// Parse never panics; on success the AST renders without panicking,
// and the rendering re-parses successfully (the printer emits valid
// syntax). Seed corpus: testdata/fuzz/FuzzParseQuery.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"/bib/book/title",
		"//book[author/last = \"Stevens\"]/title",
		"/bib/book[price < 50][@year = 2000]",
		"//open_auction[bidder]/current",
		"/site/regions/*/item/@id",
		"for $b in /bib/book where $b/price > 60 order by $b/title return $b/title",
		"for $b in //book return <e n=\"{count($b/author)}\">{$b/title/text()}</e>",
		"let $x := (1, 2, 3) return sum($x)",
		"doc(\"other.xml\")//entry",
		"1 to 10",
		"ancestor::book/preceding-sibling::title",
		"text()",
		"..//a[not(b)]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) {
			return // the lexer contract is UTF-8 input
		}
		e, err := Parse(src)
		if err != nil {
			return
		}
		rendered := e.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("printer emitted unparseable syntax:\n  input:    %q\n  rendered: %q\n  error:    %v", src, rendered, err)
		}
	})
}
