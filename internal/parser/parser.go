package parser

import (
	"fmt"
	"strings"

	"xqp/internal/ast"
)

// Parse parses an XQuery-subset expression.
func Parse(src string) (ast.Expr, error) {
	p := &parser{l: newLexer(src)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, p.l.errAt(t.pos, "unexpected %s after expression", t.kind)
	}
	return e, nil
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(src string) ast.Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	l *lexer
}

type lexState struct {
	pos    int
	peeked *token
}

func (p *parser) mark() lexState { return lexState{p.l.pos, p.l.peeked} }
func (p *parser) restore(s lexState) {
	p.l.pos = s.pos
	p.l.peeked = s.peeked
}

func (p *parser) peek() (token, error) { return p.l.peek() }
func (p *parser) next() (token, error) { return p.l.next() }

func (p *parser) expect(k tokKind) (token, error) {
	t, err := p.next()
	if err != nil {
		return t, err
	}
	if t.kind != k {
		return t, p.l.errAt(t.pos, "expected %s, found %s", k, describe(t))
	}
	return t, nil
}

func describe(t token) string {
	switch t.kind {
	case tokName:
		return fmt.Sprintf("'%s'", t.text)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	default:
		return t.kind.String()
	}
}

// accept consumes the next token if it has kind k.
func (p *parser) accept(k tokKind) (bool, error) {
	t, err := p.peek()
	if err != nil {
		return false, err
	}
	if t.kind == k {
		_, err = p.next()
		return true, err
	}
	return false, nil
}

// peekIsName reports whether the next token is the name s.
func (p *parser) peekIsName(s string) (bool, error) {
	t, err := p.peek()
	if err != nil {
		return false, err
	}
	return t.kind == tokName && t.text == s, nil
}

// acceptName consumes the next token if it is the name s.
func (p *parser) acceptName(s string) (bool, error) {
	ok, err := p.peekIsName(s)
	if err != nil || !ok {
		return false, err
	}
	_, err = p.next()
	return true, err
}

// keywordThenDollar reports whether the next tokens are the name kw
// followed by '$' (distinguishing FLWOR/quantifier keywords from paths).
func (p *parser) keywordThenDollar(kw string) (bool, error) {
	st := p.mark()
	defer func() { p.restore(st) }()
	t, err := p.next()
	if err != nil || t.kind != tokName || t.text != kw {
		return false, err
	}
	t2, err := p.next()
	if err != nil {
		return false, err
	}
	return t2.kind == tokDollar, nil
}

// parseExpr parses a comma-separated sequence expression.
func (p *parser) parseExpr() (ast.Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	items := []ast.Expr{first}
	for {
		ok, err := p.accept(tokComma)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &ast.SequenceExpr{Items: items}, nil
}

func (p *parser) parseExprSingle() (ast.Expr, error) {
	if ok, err := p.keywordThenDollar("for"); err != nil {
		return nil, err
	} else if ok {
		return p.parseFLWOR()
	}
	if ok, err := p.keywordThenDollar("let"); err != nil {
		return nil, err
	} else if ok {
		return p.parseFLWOR()
	}
	if ok, err := p.keywordThenDollar("some"); err != nil {
		return nil, err
	} else if ok {
		return p.parseQuantified(ast.QuantSome)
	}
	if ok, err := p.keywordThenDollar("every"); err != nil {
		return nil, err
	} else if ok {
		return p.parseQuantified(ast.QuantEvery)
	}
	if ok, err := p.peekIsName("if"); err != nil {
		return nil, err
	} else if ok {
		st := p.mark()
		if _, err := p.next(); err != nil {
			return nil, err
		}
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokLParen {
			return p.parseIf()
		}
		p.restore(st) // "if" as an element name in a path
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (ast.Expr, error) {
	f := &ast.FLWOR{}
	for {
		isFor, err := p.keywordThenDollar("for")
		if err != nil {
			return nil, err
		}
		isLet := false
		if !isFor {
			isLet, err = p.keywordThenDollar("let")
			if err != nil {
				return nil, err
			}
		}
		if !isFor && !isLet {
			break
		}
		if _, err := p.next(); err != nil { // consume for/let
			return nil, err
		}
		for {
			if _, err := p.expect(tokDollar); err != nil {
				return nil, err
			}
			v, err := p.expect(tokName)
			if err != nil {
				return nil, err
			}
			cl := ast.Clause{Var: v.text}
			if isFor {
				cl.Kind = ast.ClauseFor
				if ok, err := p.acceptName("at"); err != nil {
					return nil, err
				} else if ok {
					if _, err := p.expect(tokDollar); err != nil {
						return nil, err
					}
					pv, err := p.expect(tokName)
					if err != nil {
						return nil, err
					}
					cl.PosVar = pv.text
				}
				if ok, err := p.acceptName("in"); err != nil {
					return nil, err
				} else if !ok {
					t, _ := p.peek()
					return nil, p.l.errAt(t.pos, "expected 'in' in for clause")
				}
			} else {
				cl.Kind = ast.ClauseLet
				if _, err := p.expect(tokAssign); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			cl.Expr = e
			f.Clauses = append(f.Clauses, cl)
			ok, err := p.accept(tokComma)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if len(f.Clauses) == 0 {
		t, _ := p.peek()
		return nil, p.l.errAt(t.pos, "FLWOR expression needs at least one for/let clause")
	}
	if ok, err := p.acceptName("where"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		f.Where = w
	}
	// "stable order by" / "order by"
	if ok, err := p.acceptName("stable"); err != nil {
		return nil, err
	} else if ok {
		if ok2, err := p.acceptName("order"); err != nil || !ok2 {
			t, _ := p.peek()
			return nil, p.l.errAt(t.pos, "expected 'order' after 'stable'")
		}
		if err := p.parseOrderTail(f); err != nil {
			return nil, err
		}
	} else if ok, err := p.acceptName("order"); err != nil {
		return nil, err
	} else if ok {
		if err := p.parseOrderTail(f); err != nil {
			return nil, err
		}
	}
	if ok, err := p.acceptName("return"); err != nil {
		return nil, err
	} else if !ok {
		t, _ := p.peek()
		return nil, p.l.errAt(t.pos, "expected 'return' in FLWOR expression")
	}
	r, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	f.Return = r
	return f, nil
}

func (p *parser) parseOrderTail(f *ast.FLWOR) error {
	if ok, err := p.acceptName("by"); err != nil || !ok {
		t, _ := p.peek()
		return p.l.errAt(t.pos, "expected 'by' after 'order'")
	}
	for {
		key, err := p.parseExprSingle()
		if err != nil {
			return err
		}
		spec := ast.OrderSpec{Key: key}
		if ok, err := p.acceptName("descending"); err != nil {
			return err
		} else if ok {
			spec.Descending = true
		} else if _, err := p.acceptName("ascending"); err != nil {
			return err
		}
		if ok, err := p.acceptName("empty"); err != nil {
			return err
		} else if ok {
			if ok2, err := p.acceptName("least"); err != nil {
				return err
			} else if ok2 {
				spec.EmptyLeast = true
			} else if ok2, err := p.acceptName("greatest"); err != nil {
				return err
			} else if !ok2 {
				t, _ := p.peek()
				return p.l.errAt(t.pos, "expected 'greatest' or 'least' after 'empty'")
			}
		}
		f.OrderBy = append(f.OrderBy, spec)
		ok, err := p.accept(tokComma)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

func (p *parser) parseQuantified(kind ast.QuantKind) (ast.Expr, error) {
	if _, err := p.next(); err != nil { // some/every
		return nil, err
	}
	q := &ast.Quantified{Kind: kind}
	for {
		if _, err := p.expect(tokDollar); err != nil {
			return nil, err
		}
		v, err := p.expect(tokName)
		if err != nil {
			return nil, err
		}
		if ok, err := p.acceptName("in"); err != nil {
			return nil, err
		} else if !ok {
			t, _ := p.peek()
			return nil, p.l.errAt(t.pos, "expected 'in' in quantified expression")
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		q.Bindings = append(q.Bindings, ast.QuantBinding{Var: v.text, In: e})
		ok, err := p.accept(tokComma)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if ok, err := p.acceptName("satisfies"); err != nil {
		return nil, err
	} else if !ok {
		t, _ := p.peek()
		return nil, p.l.errAt(t.pos, "expected 'satisfies'")
	}
	s, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	q.Satisfies = s
	return q, nil
}

func (p *parser) parseIf() (ast.Expr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if ok, err := p.acceptName("then"); err != nil || !ok {
		t, _ := p.peek()
		return nil, p.l.errAt(t.pos, "expected 'then'")
	}
	th, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if ok, err := p.acceptName("else"); err != nil || !ok {
		t, _ := p.peek()
		return nil, p.l.errAt(t.pos, "expected 'else'")
	}
	el, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &ast.If{Cond: cond, Then: th, Else: el}, nil
}

func (p *parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.acceptName("or")
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: ast.OpOr, L: left, R: right}
	}
}

func (p *parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.acceptName("and")
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: ast.OpAnd, L: left, R: right}
	}
}

var valueComps = map[string]ast.BinOp{
	"eq": ast.OpEq, "ne": ast.OpNe, "lt": ast.OpLt,
	"le": ast.OpLe, "gt": ast.OpGt, "ge": ast.OpGe,
}

func (p *parser) parseComparison() (ast.Expr, error) {
	left, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	var op ast.BinOp
	found := false
	switch t.kind {
	case tokEq:
		op, found = ast.OpEq, true
	case tokNe:
		op, found = ast.OpNe, true
	case tokLt:
		op, found = ast.OpLt, true
	case tokLe:
		op, found = ast.OpLe, true
	case tokGt:
		op, found = ast.OpGt, true
	case tokGe:
		op, found = ast.OpGe, true
	case tokName:
		if o, ok := valueComps[t.text]; ok {
			op, found = o, true
		}
	}
	if !found {
		return left, nil
	}
	if _, err := p.next(); err != nil {
		return nil, err
	}
	right, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	return &ast.Binary{Op: op, L: left, R: right}, nil
}

func (p *parser) parseRange() (ast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	ok, err := p.acceptName("to")
	if err != nil || !ok {
		return left, err
	}
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &ast.Binary{Op: ast.OpTo, L: left, R: right}, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		var op ast.BinOp
		switch t.kind {
		case tokPlus:
			op = ast.OpAdd
		case tokMinus:
			op = ast.OpSub
		default:
			return left, nil
		}
		if _, err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		var op ast.BinOp
		switch {
		case t.kind == tokStar:
			op = ast.OpMul
		case t.kind == tokName && t.text == "div":
			op = ast.OpDiv
		case t.kind == tokName && t.text == "idiv":
			op = ast.OpIDiv
		case t.kind == tokName && t.text == "mod":
			op = ast.OpMod
		default:
			return left, nil
		}
		if _, err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	neg := false
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokMinus {
			neg = !neg
			if _, err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		if t.kind == tokPlus {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if neg {
		return &ast.Unary{Neg: true, X: e}, nil
	}
	return e, nil
}

func (p *parser) parseUnion() (ast.Expr, error) {
	left, err := p.parseIntersectExcept()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		isUnion := t.kind == tokPipe || (t.kind == tokName && t.text == "union")
		if !isUnion {
			return left, nil
		}
		if _, err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseIntersectExcept()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: ast.OpUnion, L: left, R: right}
	}
}

func (p *parser) parseIntersectExcept() (ast.Expr, error) {
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		var op ast.BinOp
		switch {
		case t.kind == tokName && t.text == "intersect":
			op = ast.OpIntersect
		case t.kind == tokName && t.text == "except":
			op = ast.OpExcept
		default:
			return left, nil
		}
		if _, err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, L: left, R: right}
	}
}

// descOrSelfStep is the step inserted for the // abbreviation.
func descOrSelfStep() ast.Step {
	return ast.Step{Axis: ast.AxisDescendantOrSelf, Test: ast.NodeTest{Kind: ast.TestNode}}
}

func (p *parser) parsePath() (ast.Expr, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokSlash:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		pe := &ast.PathExpr{Rooted: true}
		nt, err := p.peek()
		if err != nil {
			return nil, err
		}
		if startsStep(nt) {
			if err := p.parseRelative(pe); err != nil {
				return nil, err
			}
		}
		return pe, nil
	case tokSlash2:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		pe := &ast.PathExpr{Rooted: true, Steps: []ast.Step{descOrSelfStep()}}
		if err := p.parseRelative(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}
	// Relative path: first a step or primary, then optional /... tail.
	first, step, isStep, err := p.parseFirstStep()
	if err != nil {
		return nil, err
	}
	pe := &ast.PathExpr{}
	if isStep {
		pe.Steps = append(pe.Steps, step)
	} else {
		// Check whether a path tail follows; if not, return the primary
		// unwrapped to keep the AST small.
		nt, err := p.peek()
		if err != nil {
			return nil, err
		}
		if nt.kind != tokSlash && nt.kind != tokSlash2 {
			return first, nil
		}
		pe.Base = first
	}
	for {
		nt, err := p.peek()
		if err != nil {
			return nil, err
		}
		if nt.kind == tokSlash {
			if _, err := p.next(); err != nil {
				return nil, err
			}
		} else if nt.kind == tokSlash2 {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			pe.Steps = append(pe.Steps, descOrSelfStep())
		} else {
			break
		}
		s, err := p.parseAxisStep()
		if err != nil {
			return nil, err
		}
		pe.Steps = append(pe.Steps, s)
	}
	return pe, nil
}

// parseRelative parses "step ((/|//) step)*" appending onto pe.
func (p *parser) parseRelative(pe *ast.PathExpr) error {
	s, err := p.parseAxisStep()
	if err != nil {
		return err
	}
	pe.Steps = append(pe.Steps, s)
	for {
		nt, err := p.peek()
		if err != nil {
			return err
		}
		switch nt.kind {
		case tokSlash:
			if _, err := p.next(); err != nil {
				return err
			}
		case tokSlash2:
			if _, err := p.next(); err != nil {
				return err
			}
			pe.Steps = append(pe.Steps, descOrSelfStep())
		default:
			return nil
		}
		s, err := p.parseAxisStep()
		if err != nil {
			return err
		}
		pe.Steps = append(pe.Steps, s)
	}
}

// startsStep reports whether the token can begin an axis step.
func startsStep(t token) bool {
	switch t.kind {
	case tokName, tokStar, tokAt, tokDotDot, tokDot:
		return true
	}
	return false
}

// parseFirstStep parses the head of a relative path: either an axis step
// (returned with isStep=true) or a primary expression with optional
// predicates.
func (p *parser) parseFirstStep() (ast.Expr, ast.Step, bool, error) {
	t, err := p.peek()
	if err != nil {
		return nil, ast.Step{}, false, err
	}
	switch t.kind {
	case tokAt, tokDotDot, tokStar:
		s, err := p.parseAxisStep()
		return nil, s, true, err
	case tokDot:
		// Context item; predicates attach as a self step.
		if _, err := p.next(); err != nil {
			return nil, ast.Step{}, false, err
		}
		preds, err := p.parsePredicates()
		if err != nil {
			return nil, ast.Step{}, false, err
		}
		if len(preds) == 0 {
			return &ast.ContextItem{}, ast.Step{}, false, nil
		}
		return nil, ast.Step{Axis: ast.AxisSelf, Test: ast.NodeTest{Kind: ast.TestNode}, Preds: preds}, true, nil
	case tokName:
		// Could be: axis::..., kindtest(, function call(, computed ctor,
		// or a plain name test.
		st := p.mark()
		name := t.text
		if _, err := p.next(); err != nil {
			return nil, ast.Step{}, false, err
		}
		nt, err := p.peek()
		if err != nil {
			return nil, ast.Step{}, false, err
		}
		switch {
		case nt.kind == tokColon2:
			p.restore(st)
			s, err := p.parseAxisStep()
			return nil, s, true, err
		case nt.kind == tokLParen:
			if isKindTestName(name) {
				p.restore(st)
				s, err := p.parseAxisStep()
				return nil, s, true, err
			}
			p.restore(st)
			e, err := p.parsePostfix()
			return e, ast.Step{}, false, err
		case nt.kind == tokLBrace && (name == "text"):
			p.restore(st)
			e, err := p.parsePostfix()
			return e, ast.Step{}, false, err
		case nt.kind == tokName && (name == "element" || name == "attribute"):
			// computed constructor: element name { ... }
			st2 := p.mark()
			if _, err := p.next(); err != nil {
				return nil, ast.Step{}, false, err
			}
			b, err := p.peek()
			if err != nil {
				return nil, ast.Step{}, false, err
			}
			if b.kind == tokLBrace {
				p.restore(st)
				e, err := p.parsePostfix()
				return e, ast.Step{}, false, err
			}
			p.restore(st2)
			fallthrough
		default:
			// Plain name test step.
			p.restore(st)
			s, err := p.parseAxisStep()
			return nil, s, true, err
		}
	default:
		e, err := p.parsePostfix()
		return e, ast.Step{}, false, err
	}
}

func isKindTestName(s string) bool {
	switch s {
	case "text", "node", "comment", "processing-instruction":
		return true
	}
	return false
}

var axisNames = map[string]ast.Axis{
	"child":              ast.AxisChild,
	"descendant":         ast.AxisDescendant,
	"descendant-or-self": ast.AxisDescendantOrSelf,
	"self":               ast.AxisSelf,
	"parent":             ast.AxisParent,
	"ancestor":           ast.AxisAncestor,
	"ancestor-or-self":   ast.AxisAncestorOrSelf,
	"attribute":          ast.AxisAttribute,
	"following-sibling":  ast.AxisFollowingSibling,
	"preceding-sibling":  ast.AxisPrecedingSibling,
}

func (p *parser) parseAxisStep() (ast.Step, error) {
	t, err := p.peek()
	if err != nil {
		return ast.Step{}, err
	}
	step := ast.Step{Axis: ast.AxisChild}
	switch t.kind {
	case tokAt:
		if _, err := p.next(); err != nil {
			return ast.Step{}, err
		}
		step.Axis = ast.AxisAttribute
	case tokDotDot:
		if _, err := p.next(); err != nil {
			return ast.Step{}, err
		}
		step.Axis = ast.AxisParent
		step.Test = ast.NodeTest{Kind: ast.TestNode}
		preds, err := p.parsePredicates()
		if err != nil {
			return ast.Step{}, err
		}
		step.Preds = preds
		return step, nil
	case tokDot:
		if _, err := p.next(); err != nil {
			return ast.Step{}, err
		}
		step.Axis = ast.AxisSelf
		step.Test = ast.NodeTest{Kind: ast.TestNode}
		preds, err := p.parsePredicates()
		if err != nil {
			return ast.Step{}, err
		}
		step.Preds = preds
		return step, nil
	case tokName:
		// Possible explicit axis.
		if ax, ok := axisNames[t.text]; ok {
			st := p.mark()
			if _, err := p.next(); err != nil {
				return ast.Step{}, err
			}
			c, err := p.peek()
			if err != nil {
				return ast.Step{}, err
			}
			if c.kind == tokColon2 {
				if _, err := p.next(); err != nil {
					return ast.Step{}, err
				}
				step.Axis = ax
			} else {
				p.restore(st)
			}
		}
	}
	// Node test.
	t, err = p.peek()
	if err != nil {
		return ast.Step{}, err
	}
	switch t.kind {
	case tokStar:
		if _, err := p.next(); err != nil {
			return ast.Step{}, err
		}
		step.Test = ast.NodeTest{Kind: ast.TestName, Name: "*"}
	case tokName:
		name := t.text
		if _, err := p.next(); err != nil {
			return ast.Step{}, err
		}
		if isKindTestName(name) {
			nt, err := p.peek()
			if err != nil {
				return ast.Step{}, err
			}
			if nt.kind == tokLParen {
				if _, err := p.next(); err != nil {
					return ast.Step{}, err
				}
				test := ast.NodeTest{}
				switch name {
				case "text":
					test.Kind = ast.TestText
				case "node":
					test.Kind = ast.TestNode
				case "comment":
					test.Kind = ast.TestComment
				case "processing-instruction":
					test.Kind = ast.TestPI
					a, err := p.peek()
					if err != nil {
						return ast.Step{}, err
					}
					if a.kind == tokString || a.kind == tokName {
						if _, err := p.next(); err != nil {
							return ast.Step{}, err
						}
						test.Name = a.text
					}
				}
				if _, err := p.expect(tokRParen); err != nil {
					return ast.Step{}, err
				}
				step.Test = test
				break
			}
		}
		step.Test = ast.NodeTest{Kind: ast.TestName, Name: name}
	default:
		return ast.Step{}, p.l.errAt(t.pos, "expected node test, found %s", describe(t))
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return ast.Step{}, err
	}
	step.Preds = preds
	return step, nil
}

func (p *parser) parsePredicates() ([]ast.Expr, error) {
	var preds []ast.Expr
	for {
		ok, err := p.accept(tokLBrack)
		if err != nil {
			return nil, err
		}
		if !ok {
			return preds, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrack); err != nil {
			return nil, err
		}
		preds = append(preds, e)
	}
}

// parsePostfix parses a primary expression with trailing predicates.
func (p *parser) parsePostfix() (ast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return nil, err
	}
	if len(preds) == 0 {
		return e, nil
	}
	return &ast.PathExpr{
		Base:  e,
		Steps: []ast.Step{{Axis: ast.AxisSelf, Test: ast.NodeTest{Kind: ast.TestNode}, Preds: preds}},
	}, nil
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokString:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		return &ast.StringLit{Val: t.text}, nil
	case tokNumber:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		return &ast.NumberLit{Val: t.num, IsInt: t.isInt}, nil
	case tokDollar:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		v, err := p.expect(tokName)
		if err != nil {
			return nil, err
		}
		return &ast.VarRef{Name: v.text}, nil
	case tokDot:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		return &ast.ContextItem{}, nil
	case tokLParen:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		if ok, err := p.accept(tokRParen); err != nil {
			return nil, err
		} else if ok {
			return &ast.EmptySeq{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokLt:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		return p.parseDirectCtor()
	case tokName:
		name := t.text
		if _, err := p.next(); err != nil {
			return nil, err
		}
		nt, err := p.peek()
		if err != nil {
			return nil, err
		}
		// Computed constructors.
		if (name == "element" || name == "attribute") && nt.kind == tokName {
			ctorName := nt.text
			if _, err := p.next(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLBrace); err != nil {
				return nil, err
			}
			var content ast.Expr
			if ok, err := p.accept(tokRBrace); err != nil {
				return nil, err
			} else if !ok {
				content, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokRBrace); err != nil {
					return nil, err
				}
			}
			return &ast.ComputedCtor{Kind: name, Name: ctorName, Content: content}, nil
		}
		if name == "text" && nt.kind == tokLBrace {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			var content ast.Expr
			if ok, err := p.accept(tokRBrace); err != nil {
				return nil, err
			} else if !ok {
				content, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokRBrace); err != nil {
					return nil, err
				}
			}
			return &ast.ComputedCtor{Kind: "text", Content: content}, nil
		}
		if nt.kind == tokLParen {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			call := &ast.FuncCall{Name: strings.TrimPrefix(name, "fn:")}
			if ok, err := p.accept(tokRParen); err != nil {
				return nil, err
			} else if ok {
				return call, nil
			}
			for {
				a, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				ok, err := p.accept(tokComma)
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return nil, p.l.errAt(t.pos, "unexpected name '%s' in expression", name)
	}
	return nil, p.l.errAt(t.pos, "unexpected %s", describe(t))
}
