// Package parser turns XQuery-subset source text into the AST of package
// ast. The grammar covers the non-recursive fragment the paper targets:
// FLWOR, quantified, conditional, path, arithmetic/comparison/logical
// expressions, direct and computed constructors, and function calls.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates token kinds. XQuery keywords are lexed as names and
// recognized contextually by the parser.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokName
	tokString // quoted literal, value unescaped
	tokNumber
	tokDollar  // $
	tokLParen  // (
	tokRParen  // )
	tokLBrack  // [
	tokRBrack  // ]
	tokLBrace  // {
	tokRBrace  // }
	tokComma   // ,
	tokDot     // .
	tokDotDot  // ..
	tokSlash   // /
	tokSlash2  // //
	tokAt      // @
	tokPipe    // |
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokEq      // =
	tokNe      // !=
	tokLt      // <
	tokLe      // <=
	tokGt      // >
	tokGe      // >=
	tokAssign  // :=
	tokColon2  // ::
	tokLtSlash // </  (only meaningful inside constructors)
	tokQMark   // ?
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tokEOF: "end of input", tokName: "name", tokString: "string literal",
		tokNumber: "number", tokDollar: "'$'", tokLParen: "'('", tokRParen: "')'",
		tokLBrack: "'['", tokRBrack: "']'", tokLBrace: "'{'", tokRBrace: "'}'",
		tokComma: "','", tokDot: "'.'", tokDotDot: "'..'", tokSlash: "'/'",
		tokSlash2: "'//'", tokAt: "'@'", tokPipe: "'|'", tokPlus: "'+'",
		tokMinus: "'-'", tokStar: "'*'", tokEq: "'='", tokNe: "'!='",
		tokLt: "'<'", tokLe: "'<='", tokGt: "'>'", tokGe: "'>='",
		tokAssign: "':='", tokColon2: "'::'", tokLtSlash: "'</'", tokQMark: "'?'",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

type token struct {
	kind  tokKind
	text  string // name text, unescaped string value, or number text
	pos   int    // byte offset in source
	num   float64
	isInt bool
}

// SyntaxError reports a parse failure with its source position.
type SyntaxError struct {
	Pos  int
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src    string
	pos    int
	peeked *token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errAt(pos int, format string, args ...any) *SyntaxError {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &SyntaxError{Pos: pos, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// skipSpaceAndComments advances over whitespace and (: ... :) comments,
// which nest per the XQuery spec.
func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			depth := 1
			l.pos += 2
			for l.pos < len(l.src) && depth > 0 {
				if strings.HasPrefix(l.src[l.pos:], "(:") {
					depth++
					l.pos += 2
				} else if strings.HasPrefix(l.src[l.pos:], ":)") {
					depth--
					l.pos += 2
				} else {
					l.pos++
				}
			}
			if depth > 0 {
				return l.errAt(l.pos, "unterminated comment")
			}
			continue
		}
		break
	}
	return nil
}

// peek returns the next token without consuming it.
func (l *lexer) peek() (token, error) {
	if l.peeked == nil {
		t, err := l.lex()
		if err != nil {
			return token{}, err
		}
		l.peeked = &t
	}
	return *l.peeked, nil
}

// next consumes and returns the next token.
func (l *lexer) next() (token, error) {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t, nil
	}
	return l.lex()
}

// rawPos returns the byte position right after the last consumed token
// (only valid when no token is peeked); used to hand control to the
// direct-constructor scanner.
func (l *lexer) rawPos() int { return l.pos }

// setPos repositions the lexer (after raw constructor scanning) and drops
// any peeked token.
func (l *lexer) setPos(p int) {
	l.pos = p
	l.peeked = nil
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lex() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "//":
		l.pos += 2
		return token{kind: tokSlash2, pos: start}, nil
	case two == "..":
		l.pos += 2
		return token{kind: tokDotDot, pos: start}, nil
	case two == "!=":
		l.pos += 2
		return token{kind: tokNe, pos: start}, nil
	case two == "<=":
		l.pos += 2
		return token{kind: tokLe, pos: start}, nil
	case two == ">=":
		l.pos += 2
		return token{kind: tokGe, pos: start}, nil
	case two == ":=":
		l.pos += 2
		return token{kind: tokAssign, pos: start}, nil
	case two == "::":
		l.pos += 2
		return token{kind: tokColon2, pos: start}, nil
	case two == "</":
		l.pos += 2
		return token{kind: tokLtSlash, pos: start}, nil
	}
	switch c {
	case '$':
		l.pos++
		return token{kind: tokDollar, pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBrack, pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBrack, pos: start}, nil
	case '{':
		l.pos++
		return token{kind: tokLBrace, pos: start}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case '/':
		l.pos++
		return token{kind: tokSlash, pos: start}, nil
	case '@':
		l.pos++
		return token{kind: tokAt, pos: start}, nil
	case '|':
		l.pos++
		return token{kind: tokPipe, pos: start}, nil
	case '+':
		l.pos++
		return token{kind: tokPlus, pos: start}, nil
	case '-':
		l.pos++
		return token{kind: tokMinus, pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokEq, pos: start}, nil
	case '<':
		l.pos++
		return token{kind: tokLt, pos: start}, nil
	case '>':
		l.pos++
		return token{kind: tokGt, pos: start}, nil
	case '?':
		l.pos++
		return token{kind: tokQMark, pos: start}, nil
	case '\'', '"':
		return l.lexString(rune(c))
	case '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber()
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if isNameStart(r) {
		return l.lexName()
	}
	return token{}, l.errAt(start, "unexpected character %q", c)
}

func (l *lexer) lexString(quote rune) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if r == quote {
			// Doubled quote is an escaped quote.
			if l.pos+size < len(l.src) && rune(l.src[l.pos+size]) == quote {
				b.WriteRune(quote)
				l.pos += 2 * size
				continue
			}
			l.pos += size
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteRune(r)
		l.pos += size
	}
	return token{}, l.errAt(start, "unterminated string literal")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	isInt := true
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		isInt = false
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		isInt = false
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	var val float64
	if _, err := fmt.Sscanf(text, "%g", &val); err != nil {
		return token{}, l.errAt(start, "bad number %q", text)
	}
	return token{kind: tokNumber, text: text, pos: start, num: val, isInt: isInt}, nil
}

func (l *lexer) lexName() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isNameChar(r) {
			break
		}
		l.pos += size
	}
	// Allow one namespace-style colon inside a QName (name:name), but not
	// "::" which is an axis separator.
	if l.pos < len(l.src) && l.src[l.pos] == ':' &&
		l.pos+1 < len(l.src) && l.src[l.pos+1] != ':' && l.src[l.pos+1] != '=' {
		r, _ := utf8.DecodeRuneInString(l.src[l.pos+1:])
		if isNameStart(r) {
			l.pos++
			for l.pos < len(l.src) {
				r, size := utf8.DecodeRuneInString(l.src[l.pos:])
				if !isNameChar(r) {
					break
				}
				l.pos += size
			}
		}
	}
	return token{kind: tokName, text: l.src[start:l.pos], pos: start}, nil
}
