package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"xqp/internal/ast"
)

// parseDirectCtor parses a direct element constructor. The opening '<' has
// already been consumed by the token lexer; scanning proceeds over the raw
// source (constructors are a different lexical state than expressions) and
// re-enters the expression parser for enclosed {expr} blocks.
func (p *parser) parseDirectCtor() (ast.Expr, error) {
	e, end, err := p.scanElement(p.l.rawPos())
	if err != nil {
		return nil, err
	}
	p.l.setPos(end)
	return e, nil
}

// scanElement scans an element whose name starts at pos (after '<').
// It returns the constructor and the position just past the element.
func (p *parser) scanElement(pos int) (*ast.ElementCtor, int, error) {
	src := p.l.src
	name, pos, err := p.scanQName(pos)
	if err != nil {
		return nil, 0, err
	}
	e := &ast.ElementCtor{Name: name}
	for {
		pos = skipWS(src, pos)
		if pos >= len(src) {
			return nil, 0, p.l.errAt(pos, "unterminated element constructor <%s>", name)
		}
		if strings.HasPrefix(src[pos:], "/>") {
			return e, pos + 2, nil
		}
		if src[pos] == '>' {
			pos++
			return p.scanContent(e, pos)
		}
		// Attribute.
		aname, npos, err := p.scanQName(pos)
		if err != nil {
			return nil, 0, err
		}
		pos = skipWS(src, npos)
		if pos >= len(src) || src[pos] != '=' {
			return nil, 0, p.l.errAt(pos, "expected '=' after attribute name %q", aname)
		}
		pos = skipWS(src, pos+1)
		if pos >= len(src) || (src[pos] != '"' && src[pos] != '\'') {
			return nil, 0, p.l.errAt(pos, "expected quoted attribute value")
		}
		attr := ast.AttrConstructor{Name: aname}
		parts, npos2, err := p.scanAttrValue(pos)
		if err != nil {
			return nil, 0, err
		}
		attr.Parts = parts
		pos = npos2
		e.Attrs = append(e.Attrs, attr)
	}
}

// scanAttrValue scans a quoted attribute value template starting at the
// opening quote; returns the parts and the position past the closing quote.
func (p *parser) scanAttrValue(pos int) ([]ast.AttrValuePart, int, error) {
	src := p.l.src
	quote := src[pos]
	pos++
	var parts []ast.AttrValuePart
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			parts = append(parts, ast.AttrValuePart{Lit: lit.String()})
			lit.Reset()
		}
	}
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == quote:
			if pos+1 < len(src) && src[pos+1] == quote {
				lit.WriteByte(quote)
				pos += 2
				continue
			}
			flush()
			return parts, pos + 1, nil
		case c == '{':
			if pos+1 < len(src) && src[pos+1] == '{' {
				lit.WriteByte('{')
				pos += 2
				continue
			}
			flush()
			expr, npos, err := p.parseEnclosed(pos + 1)
			if err != nil {
				return nil, 0, err
			}
			parts = append(parts, ast.AttrValuePart{Expr: expr})
			pos = npos
		case c == '}':
			if pos+1 < len(src) && src[pos+1] == '}' {
				lit.WriteByte('}')
				pos += 2
				continue
			}
			return nil, 0, p.l.errAt(pos, "unescaped '}' in attribute value")
		case c == '&':
			s, npos, err := p.scanEntity(pos)
			if err != nil {
				return nil, 0, err
			}
			lit.WriteString(s)
			pos = npos
		default:
			lit.WriteByte(c)
			pos++
		}
	}
	return nil, 0, p.l.errAt(pos, "unterminated attribute value")
}

// scanContent scans element content up to and including the matching end
// tag of e; returns the position past the end tag.
func (p *parser) scanContent(e *ast.ElementCtor, pos int) (*ast.ElementCtor, int, error) {
	src := p.l.src
	var lit strings.Builder
	flush := func() {
		if lit.Len() == 0 {
			return
		}
		s := lit.String()
		lit.Reset()
		// Boundary-space policy: strip whitespace-only text particles.
		if strings.TrimSpace(s) == "" {
			return
		}
		e.Content = append(e.Content, ast.ContentItem{Lit: s})
	}
	for pos < len(src) {
		switch {
		case strings.HasPrefix(src[pos:], "</"):
			flush()
			name, npos, err := p.scanQName(pos + 2)
			if err != nil {
				return nil, 0, err
			}
			npos = skipWS(src, npos)
			if npos >= len(src) || src[npos] != '>' {
				return nil, 0, p.l.errAt(npos, "malformed end tag </%s", name)
			}
			if name != e.Name {
				return nil, 0, p.l.errAt(pos, "end tag </%s> does not match <%s>", name, e.Name)
			}
			return e, npos + 1, nil
		case strings.HasPrefix(src[pos:], "<!--"):
			end := strings.Index(src[pos+4:], "-->")
			if end < 0 {
				return nil, 0, p.l.errAt(pos, "unterminated comment in constructor")
			}
			pos += 4 + end + 3
		case strings.HasPrefix(src[pos:], "<![CDATA["):
			end := strings.Index(src[pos+9:], "]]>")
			if end < 0 {
				return nil, 0, p.l.errAt(pos, "unterminated CDATA section")
			}
			lit.WriteString(src[pos+9 : pos+9+end])
			pos += 9 + end + 3
		case strings.HasPrefix(src[pos:], "<?"):
			end := strings.Index(src[pos+2:], "?>")
			if end < 0 {
				return nil, 0, p.l.errAt(pos, "unterminated processing instruction")
			}
			pos += 2 + end + 2
		case src[pos] == '<':
			flush()
			child, npos, err := p.scanElement(pos + 1)
			if err != nil {
				return nil, 0, err
			}
			e.Content = append(e.Content, ast.ContentItem{Child: child})
			pos = npos
		case src[pos] == '{':
			if pos+1 < len(src) && src[pos+1] == '{' {
				lit.WriteByte('{')
				pos += 2
				continue
			}
			flush()
			expr, npos, err := p.parseEnclosed(pos + 1)
			if err != nil {
				return nil, 0, err
			}
			e.Content = append(e.Content, ast.ContentItem{Expr: expr})
			pos = npos
		case src[pos] == '}':
			if pos+1 < len(src) && src[pos+1] == '}' {
				lit.WriteByte('}')
				pos += 2
				continue
			}
			return nil, 0, p.l.errAt(pos, "unescaped '}' in element content")
		case src[pos] == '&':
			s, npos, err := p.scanEntity(pos)
			if err != nil {
				return nil, 0, err
			}
			lit.WriteString(s)
			pos = npos
		default:
			lit.WriteByte(src[pos])
			pos++
		}
	}
	return nil, 0, p.l.errAt(pos, "missing end tag </%s>", e.Name)
}

// parseEnclosed re-enters the expression parser at pos (just past '{');
// returns the expression and the position just past the matching '}'.
func (p *parser) parseEnclosed(pos int) (ast.Expr, int, error) {
	p.l.setPos(pos)
	e, err := p.parseExpr()
	if err != nil {
		return nil, 0, err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, 0, err
	}
	return e, p.l.rawPos(), nil
}

// scanQName scans an XML name at pos.
func (p *parser) scanQName(pos int) (string, int, error) {
	src := p.l.src
	start := pos
	if pos >= len(src) {
		return "", 0, p.l.errAt(pos, "expected name")
	}
	r, size := utf8.DecodeRuneInString(src[pos:])
	if !isNameStart(r) {
		return "", 0, p.l.errAt(pos, "expected name, found %q", src[pos])
	}
	pos += size
	for pos < len(src) {
		r, size := utf8.DecodeRuneInString(src[pos:])
		if !isNameChar(r) && r != ':' {
			break
		}
		pos += size
	}
	return src[start:pos], pos, nil
}

// scanEntity decodes a character/entity reference starting at '&'.
func (p *parser) scanEntity(pos int) (string, int, error) {
	src := p.l.src
	semi := strings.IndexByte(src[pos:], ';')
	if semi < 0 || semi > 12 {
		return "", 0, p.l.errAt(pos, "malformed entity reference")
	}
	ref := src[pos+1 : pos+semi]
	end := pos + semi + 1
	switch ref {
	case "lt":
		return "<", end, nil
	case "gt":
		return ">", end, nil
	case "amp":
		return "&", end, nil
	case "apos":
		return "'", end, nil
	case "quot":
		return `"`, end, nil
	}
	if strings.HasPrefix(ref, "#x") || strings.HasPrefix(ref, "#X") {
		n, err := strconv.ParseInt(ref[2:], 16, 32)
		if err != nil {
			return "", 0, p.l.errAt(pos, "bad character reference &%s;", ref)
		}
		return string(rune(n)), end, nil
	}
	if strings.HasPrefix(ref, "#") {
		n, err := strconv.ParseInt(ref[1:], 10, 32)
		if err != nil {
			return "", 0, p.l.errAt(pos, "bad character reference &%s;", ref)
		}
		return string(rune(n)), end, nil
	}
	return "", 0, p.l.errAt(pos, fmt.Sprintf("unknown entity &%s;", ref))
}

func skipWS(src string, pos int) int {
	for pos < len(src) {
		switch src[pos] {
		case ' ', '\t', '\n', '\r':
			pos++
		default:
			return pos
		}
	}
	return pos
}
