package parser

import (
	"strings"
	"testing"

	"xqp/internal/ast"
)

// parseOK parses src and fails the test on error.
func parseOK(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e
}

func TestParsePaths(t *testing.T) {
	cases := []struct {
		src  string
		want string // rendered AST
	}{
		{"/bib/book", "/bib/book"},
		{"/bib/book/title", "/bib/book/title"},
		{"book", "book"},
		{"./book", "./book"},
		{"@year", "@year"},
		{"book/@year", "book/@year"},
		{"*", "*"},
		{"/a/*/c", "/a/*/c"},
		{"..", ".."},
		{"../title", "../title"},
		{"child::book", "book"},
		{"descendant::price", "descendant::price"},
		{"ancestor::book", "ancestor::book"},
		{"following-sibling::book", "following-sibling::book"},
		{"preceding-sibling::book", "preceding-sibling::book"},
		{"self::book", "self::book"},
		{"text()", "text()"},
		{"node()", "node()"},
		{"comment()", "comment()"},
		{"a/text()", "a/text()"},
	}
	for _, c := range cases {
		e := parseOK(t, c.src)
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseDescendantAbbrev(t *testing.T) {
	e := parseOK(t, "//book")
	pe, ok := e.(*ast.PathExpr)
	if !ok || !pe.Rooted || len(pe.Steps) != 2 {
		t.Fatalf("//book parsed as %#v", e)
	}
	if pe.Steps[0].Axis != ast.AxisDescendantOrSelf || pe.Steps[0].Test.Kind != ast.TestNode {
		t.Errorf("first step of // is %v", pe.Steps[0])
	}
	if pe.Steps[1].Axis != ast.AxisChild || pe.Steps[1].Test.Name != "book" {
		t.Errorf("second step of // is %v", pe.Steps[1])
	}
	e2 := parseOK(t, "a//b")
	pe2 := e2.(*ast.PathExpr)
	if len(pe2.Steps) != 3 {
		t.Fatalf("a//b has %d steps", len(pe2.Steps))
	}
}

func TestParsePredicates(t *testing.T) {
	e := parseOK(t, `/bib/book[price < 60][@year = "2000"]`)
	pe := e.(*ast.PathExpr)
	if len(pe.Steps) != 2 || len(pe.Steps[1].Preds) != 2 {
		t.Fatalf("wrong shape: %s", e)
	}
	// Positional predicate.
	e2 := parseOK(t, "book[1]")
	pe2 := e2.(*ast.PathExpr)
	if len(pe2.Steps[0].Preds) != 1 {
		t.Fatalf("book[1] predicates = %d", len(pe2.Steps[0].Preds))
	}
	if _, ok := pe2.Steps[0].Preds[0].(*ast.NumberLit); !ok {
		t.Fatalf("book[1] predicate is %T", pe2.Steps[0].Preds[0])
	}
}

func TestParseRootOnly(t *testing.T) {
	e := parseOK(t, "/")
	pe, ok := e.(*ast.PathExpr)
	if !ok || !pe.Rooted || len(pe.Steps) != 0 {
		t.Fatalf("/ parsed as %#v", e)
	}
}

func TestParsePathWithBase(t *testing.T) {
	e := parseOK(t, `doc("bib.xml")/bib/book`)
	pe, ok := e.(*ast.PathExpr)
	if !ok {
		t.Fatalf("parsed as %T", e)
	}
	fc, ok := pe.Base.(*ast.FuncCall)
	if !ok || fc.Name != "doc" || len(fc.Args) != 1 {
		t.Fatalf("base = %#v", pe.Base)
	}
	if len(pe.Steps) != 2 {
		t.Fatalf("steps = %d", len(pe.Steps))
	}
	e2 := parseOK(t, "$b/title")
	pe2 := e2.(*ast.PathExpr)
	if _, ok := pe2.Base.(*ast.VarRef); !ok {
		t.Fatalf("$b/title base = %#v", pe2.Base)
	}
}

func TestParseFLWOR(t *testing.T) {
	src := `for $b in /bib/book
	        let $t := $b/title
	        where $b/price > 50
	        order by $t descending
	        return $t`
	e := parseOK(t, src)
	f, ok := e.(*ast.FLWOR)
	if !ok {
		t.Fatalf("parsed as %T", e)
	}
	if len(f.Clauses) != 2 || f.Clauses[0].Kind != ast.ClauseFor || f.Clauses[1].Kind != ast.ClauseLet {
		t.Fatalf("clauses: %v", f.Clauses)
	}
	if f.Where == nil || len(f.OrderBy) != 1 || !f.OrderBy[0].Descending {
		t.Fatalf("where/order wrong: %v / %v", f.Where, f.OrderBy)
	}
	if f.Return == nil {
		t.Fatal("no return")
	}
}

func TestParseFLWORMultiBinding(t *testing.T) {
	e := parseOK(t, "for $a in 1 to 3, $b in 4 to 6 return $a + $b")
	f := e.(*ast.FLWOR)
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2", len(f.Clauses))
	}
}

func TestParseForAt(t *testing.T) {
	e := parseOK(t, "for $x at $i in /a/b return $i")
	f := e.(*ast.FLWOR)
	if f.Clauses[0].PosVar != "i" {
		t.Fatalf("pos var = %q", f.Clauses[0].PosVar)
	}
}

func TestParseNestedFLWOR(t *testing.T) {
	src := `for $a in /x/a return for $b in $a/b return $b`
	e := parseOK(t, src)
	f := e.(*ast.FLWOR)
	if _, ok := f.Return.(*ast.FLWOR); !ok {
		t.Fatalf("nested return is %T", f.Return)
	}
}

func TestParseQuantified(t *testing.T) {
	e := parseOK(t, `some $x in /a/b satisfies $x/c = "v"`)
	q, ok := e.(*ast.Quantified)
	if !ok || q.Kind != ast.QuantSome || len(q.Bindings) != 1 {
		t.Fatalf("parsed as %#v", e)
	}
	e2 := parseOK(t, `every $x in /a/b, $y in /a/c satisfies $x = $y`)
	q2 := e2.(*ast.Quantified)
	if q2.Kind != ast.QuantEvery || len(q2.Bindings) != 2 {
		t.Fatalf("every parsed as %#v", e2)
	}
}

func TestParseIf(t *testing.T) {
	e := parseOK(t, `if ($x > 1) then "big" else "small"`)
	i, ok := e.(*ast.If)
	if !ok {
		t.Fatalf("parsed as %T", e)
	}
	if _, ok := i.Cond.(*ast.Binary); !ok {
		t.Fatalf("cond is %T", i.Cond)
	}
}

func TestIfAsElementName(t *testing.T) {
	// "if" not followed by "(" is a name test.
	e := parseOK(t, "/a/if")
	pe := e.(*ast.PathExpr)
	if pe.Steps[1].Test.Name != "if" {
		t.Fatalf("step = %v", pe.Steps[1])
	}
}

func TestParseOperatorsPrecedence(t *testing.T) {
	e := parseOK(t, "1 + 2 * 3")
	b := e.(*ast.Binary)
	if b.Op != ast.OpAdd {
		t.Fatalf("top op = %v", b.Op)
	}
	if r, ok := b.R.(*ast.Binary); !ok || r.Op != ast.OpMul {
		t.Fatalf("right = %v", b.R)
	}
	e2 := parseOK(t, "1 < 2 and 3 >= 2 or not(4 != 5)")
	if e2.(*ast.Binary).Op != ast.OpOr {
		t.Fatal("or not at top")
	}
	e3 := parseOK(t, "6 div 2 mod 2 idiv 1")
	_ = e3.(*ast.Binary)
	e4 := parseOK(t, "1 to 10")
	if e4.(*ast.Binary).Op != ast.OpTo {
		t.Fatal("to not parsed")
	}
	e5 := parseOK(t, "-$x + 2")
	if e5.(*ast.Binary).Op != ast.OpAdd {
		t.Fatal("unary minus binds wrong")
	}
	e6 := parseOK(t, "a | b union c")
	if e6.(*ast.Binary).Op != ast.OpUnion {
		t.Fatal("union not parsed")
	}
	e7 := parseOK(t, "$a eq $b")
	if e7.(*ast.Binary).Op != ast.OpEq {
		t.Fatal("eq not parsed")
	}
}

func TestParseFunctionCalls(t *testing.T) {
	e := parseOK(t, `count(/bib/book)`)
	fc := e.(*ast.FuncCall)
	if fc.Name != "count" || len(fc.Args) != 1 {
		t.Fatalf("count call = %#v", fc)
	}
	e2 := parseOK(t, `concat("a", "b", "c")`)
	if len(e2.(*ast.FuncCall).Args) != 3 {
		t.Fatal("concat args wrong")
	}
	e3 := parseOK(t, `true()`)
	if len(e3.(*ast.FuncCall).Args) != 0 {
		t.Fatal("true() args wrong")
	}
	e4 := parseOK(t, `fn:count($x)`)
	if e4.(*ast.FuncCall).Name != "count" {
		t.Fatal("fn: prefix not stripped")
	}
}

func TestParseSequences(t *testing.T) {
	e := parseOK(t, "(1, 2, 3)")
	s, ok := e.(*ast.SequenceExpr)
	if !ok || len(s.Items) != 3 {
		t.Fatalf("sequence = %#v", e)
	}
	if _, ok := parseOK(t, "()").(*ast.EmptySeq); !ok {
		t.Fatal("() not EmptySeq")
	}
}

func TestParseStringEscapes(t *testing.T) {
	e := parseOK(t, `"he said ""hi"""`)
	if e.(*ast.StringLit).Val != `he said "hi"` {
		t.Fatalf("string = %q", e.(*ast.StringLit).Val)
	}
	e2 := parseOK(t, `'it''s'`)
	if e2.(*ast.StringLit).Val != "it's" {
		t.Fatalf("string = %q", e2.(*ast.StringLit).Val)
	}
}

func TestParseNumbers(t *testing.T) {
	if n := parseOK(t, "42").(*ast.NumberLit); n.Val != 42 || !n.IsInt {
		t.Fatalf("42 = %#v", n)
	}
	if n := parseOK(t, "3.14").(*ast.NumberLit); n.Val != 3.14 || n.IsInt {
		t.Fatalf("3.14 = %#v", n)
	}
	if n := parseOK(t, "1e3").(*ast.NumberLit); n.Val != 1000 {
		t.Fatalf("1e3 = %#v", n)
	}
	if n := parseOK(t, ".5").(*ast.NumberLit); n.Val != 0.5 {
		t.Fatalf(".5 = %#v", n)
	}
}

func TestParseComments(t *testing.T) {
	e := parseOK(t, "(: outer (: nested :) still :) 7")
	if e.(*ast.NumberLit).Val != 7 {
		t.Fatal("comment not skipped")
	}
}

func TestParseDirectConstructor(t *testing.T) {
	e := parseOK(t, `<result id="{$i}" kind="x">{$t} and <b>bold</b> text</result>`)
	c, ok := e.(*ast.ElementCtor)
	if !ok {
		t.Fatalf("parsed as %T", e)
	}
	if c.Name != "result" || len(c.Attrs) != 2 {
		t.Fatalf("ctor shape: %#v", c)
	}
	if c.Attrs[0].Name != "id" || c.Attrs[0].Parts[0].Expr == nil {
		t.Fatalf("attr id: %#v", c.Attrs[0])
	}
	if c.Attrs[1].Parts[0].Lit != "x" {
		t.Fatalf("attr kind: %#v", c.Attrs[1])
	}
	// Content: {$t}, " and ", <b>, " text"
	if len(c.Content) != 4 {
		t.Fatalf("content items = %d: %#v", len(c.Content), c.Content)
	}
	if c.Content[0].Expr == nil || c.Content[2].Child == nil {
		t.Fatalf("content wrong: %#v", c.Content)
	}
	if c.Content[2].Child.Name != "b" {
		t.Fatalf("nested child: %#v", c.Content[2].Child)
	}
}

func TestParseEmptyElementConstructor(t *testing.T) {
	e := parseOK(t, `<br/>`)
	c := e.(*ast.ElementCtor)
	if c.Name != "br" || len(c.Content) != 0 {
		t.Fatalf("br = %#v", c)
	}
}

func TestParseFig1Query(t *testing.T) {
	// The paper's Fig. 1(a) query.
	src := `<results> {
	  for $b in doc("bib.xml")/bib/book
	  let $t := $b/title
	  let $a := $b/author
	  return <result> {$t} {$a} </result>
	} </results>`
	e := parseOK(t, src)
	c, ok := e.(*ast.ElementCtor)
	if !ok || c.Name != "results" {
		t.Fatalf("parsed as %#v", e)
	}
	if len(c.Content) != 1 || c.Content[0].Expr == nil {
		t.Fatalf("results content: %#v", c.Content)
	}
	f, ok := c.Content[0].Expr.(*ast.FLWOR)
	if !ok || len(f.Clauses) != 3 {
		t.Fatalf("inner FLWOR: %#v", c.Content[0].Expr)
	}
	inner, ok := f.Return.(*ast.ElementCtor)
	if !ok || inner.Name != "result" || len(inner.Content) != 2 {
		t.Fatalf("inner ctor: %#v", f.Return)
	}
}

func TestParseConstructorEscapes(t *testing.T) {
	e := parseOK(t, `<a>x {{literal}} &amp; &#65;&#x42;</a>`)
	c := e.(*ast.ElementCtor)
	if len(c.Content) != 1 {
		t.Fatalf("content = %#v", c.Content)
	}
	if got := c.Content[0].Lit; got != "x {literal} & AB" {
		t.Fatalf("lit = %q", got)
	}
}

func TestParseCDATAAndComments(t *testing.T) {
	e := parseOK(t, `<a><!-- skip --><![CDATA[<raw>]]></a>`)
	c := e.(*ast.ElementCtor)
	if len(c.Content) != 1 || c.Content[0].Lit != "<raw>" {
		t.Fatalf("content = %#v", c.Content)
	}
}

func TestParseComputedConstructors(t *testing.T) {
	e := parseOK(t, `element result { $x }`)
	c, ok := e.(*ast.ComputedCtor)
	if !ok || c.Kind != "element" || c.Name != "result" {
		t.Fatalf("parsed as %#v", e)
	}
	e2 := parseOK(t, `attribute id { 42 }`)
	if e2.(*ast.ComputedCtor).Kind != "attribute" {
		t.Fatal("attribute ctor wrong")
	}
	e3 := parseOK(t, `text { "hi" }`)
	if e3.(*ast.ComputedCtor).Kind != "text" {
		t.Fatal("text ctor wrong")
	}
	e4 := parseOK(t, `element empty {}`)
	if e4.(*ast.ComputedCtor).Content != nil {
		t.Fatal("empty ctor content not nil")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"for $x in",
		"for x in /a return $x",
		"let $x = 3 return $x", // = instead of :=
		"/a[",
		"1 +",
		`"unterminated`,
		"(: unterminated",
		"<a>{1}<b></a>",
		"<a x=1/>",
		"some $x in /a",
		"if (1) then 2",
		"$",
		"/a]",
		"element { 1 }",
		"count(1,)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) error is %T, want *SyntaxError", src, err)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("for $x in\n  /a return")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error = %T", err)
	}
	if se.Line < 1 || !strings.Contains(se.Error(), "line") {
		t.Fatalf("error = %v", se)
	}
}

func TestParseKeywordsAsNames(t *testing.T) {
	// Keywords usable as element names in paths.
	for _, src := range []string{"/return", "/for/let", "/where", "a/order/by", "/some/every"} {
		parseOK(t, src)
	}
}

func TestStringRendersParseable(t *testing.T) {
	// AST printing round-trips through the parser (idempotent rendering).
	srcs := []string{
		"/bib/book[price < 50]/title",
		"for $b in /bib/book return $b/title",
		`if ($x) then 1 else 2`,
		`some $x in /a satisfies $x = 1`,
		"count(/a/b) + 1",
		"(1, 2, 3)",
	}
	for _, src := range srcs {
		e1 := parseOK(t, src)
		e2 := parseOK(t, e1.String())
		if e1.String() != e2.String() {
			t.Errorf("rendering not idempotent: %q -> %q -> %q", src, e1.String(), e2.String())
		}
	}
}

func TestFreeVars(t *testing.T) {
	e := parseOK(t, "for $b in /bib/book[$min < price] return ($b/title, $x)")
	fv := ast.FreeVars(e)
	if len(fv) != 2 || fv[0] != "min" || fv[1] != "x" {
		t.Fatalf("FreeVars = %v", fv)
	}
	e2 := parseOK(t, "some $y in $in satisfies $y = $z")
	fv2 := ast.FreeVars(e2)
	if len(fv2) != 2 || fv2[0] != "in" || fv2[1] != "z" {
		t.Fatalf("FreeVars = %v", fv2)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	e := parseOK(t, `for $b in /bib/book where $b/price > 3 return <r>{$b/title}</r>`)
	count := 0
	ast.Walk(e, func(x ast.Expr) bool { count++; return true })
	if count < 8 {
		t.Fatalf("Walk visited only %d nodes", count)
	}
}

func BenchmarkParseFLWOR(b *testing.B) {
	src := `for $b in doc("bib.xml")/bib/book
	        let $t := $b/title
	        where $b/price > 50 and $b/@year >= 1990
	        order by $t
	        return <result>{$t}{$b/author}</result>`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseIntersectExcept(t *testing.T) {
	e := parseOK(t, "/a/b intersect /a/c")
	b, ok := e.(*ast.Binary)
	if !ok || b.Op != ast.OpIntersect {
		t.Fatalf("parsed as %#v", e)
	}
	e2 := parseOK(t, "/a/b except /a/c")
	if e2.(*ast.Binary).Op != ast.OpExcept {
		t.Fatal("except not parsed")
	}
	// Precedence: intersect binds tighter than union.
	e3 := parseOK(t, "/a | /b intersect /c")
	top := e3.(*ast.Binary)
	if top.Op != ast.OpUnion {
		t.Fatalf("top op = %v", top.Op)
	}
	if r, ok := top.R.(*ast.Binary); !ok || r.Op != ast.OpIntersect {
		t.Fatalf("right = %#v", top.R)
	}
	// "intersect" as element name still works in step position.
	parseOK(t, "/intersect/except")
}
