// Package vocab provides a tag-name vocabulary that interns element and
// attribute names as dense integer symbols.
//
// The succinct storage scheme stores one symbol per opening parenthesis
// instead of a string, which both shrinks the structure stream and makes
// tag comparisons during pattern matching a single integer compare.
package vocab

import "sort"

// Symbol is a dense identifier for an interned name. The zero Symbol is
// reserved for the synthetic document root.
type Symbol int32

// None is returned by Lookup for names that were never interned.
const None Symbol = -1

// Root is the reserved symbol for the synthetic document root.
const Root Symbol = 0

// Table interns names. It is not safe for concurrent mutation; once built
// it may be shared read-only across goroutines.
type Table struct {
	byName map[string]Symbol
	names  []string
}

// New returns a Table with the reserved root symbol pre-interned.
func New() *Table {
	t := &Table{byName: make(map[string]Symbol, 64)}
	t.names = append(t.names, "#root")
	t.byName["#root"] = Root
	return t
}

// Intern returns the symbol for name, assigning a fresh one if needed.
func (t *Table) Intern(name string) Symbol {
	if s, ok := t.byName[name]; ok {
		return s
	}
	s := Symbol(len(t.names))
	t.names = append(t.names, name)
	t.byName[name] = s
	return s
}

// Lookup returns the symbol for name, or None if it was never interned.
func (t *Table) Lookup(name string) Symbol {
	if s, ok := t.byName[name]; ok {
		return s
	}
	return None
}

// Name returns the name for a symbol. It panics on out-of-range symbols.
func (t *Table) Name(s Symbol) string { return t.names[s] }

// Len reports the number of interned names including the root symbol.
func (t *Table) Len() int { return len(t.names) }

// Names returns the interned names in symbol order (index = symbol).
func (t *Table) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// SortedNames returns the interned names in lexicographic order; useful for
// deterministic debug output.
func (t *Table) SortedNames() []string {
	out := t.Names()
	sort.Strings(out)
	return out
}

// SizeBytes estimates the in-memory footprint (experiment E1).
func (t *Table) SizeBytes() int {
	n := 0
	for _, s := range t.names {
		n += len(s) + 16
	}
	return n + len(t.names)*8
}
