package vocab

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestInternLookup(t *testing.T) {
	v := New()
	if v.Len() != 1 {
		t.Fatalf("fresh table Len = %d, want 1 (root)", v.Len())
	}
	a := v.Intern("book")
	b := v.Intern("title")
	if a == b {
		t.Fatal("distinct names got same symbol")
	}
	if got := v.Intern("book"); got != a {
		t.Errorf("re-Intern(book) = %d, want %d", got, a)
	}
	if got := v.Lookup("title"); got != b {
		t.Errorf("Lookup(title) = %d, want %d", got, b)
	}
	if got := v.Lookup("missing"); got != None {
		t.Errorf("Lookup(missing) = %d, want None", got)
	}
	if v.Name(a) != "book" || v.Name(Root) != "#root" {
		t.Errorf("Name round-trip failed")
	}
}

func TestNamesOrder(t *testing.T) {
	v := New()
	v.Intern("z")
	v.Intern("a")
	names := v.Names()
	if len(names) != 3 || names[1] != "z" || names[2] != "a" {
		t.Fatalf("Names = %v", names)
	}
	sorted := v.SortedNames()
	if sorted[0] != "#root" || sorted[1] != "a" || sorted[2] != "z" {
		t.Fatalf("SortedNames = %v", sorted)
	}
}

// Property: Name(Intern(x)) == x for arbitrary strings.
func TestInternRoundTripProperty(t *testing.T) {
	v := New()
	f := func(s string) bool { return v.Name(v.Intern(s)) == s }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: symbols are dense — Len grows by exactly one per fresh name.
func TestDenseSymbols(t *testing.T) {
	v := New()
	for i := 0; i < 1000; i++ {
		s := v.Intern(fmt.Sprintf("tag%d", i))
		if int(s) != i+1 {
			t.Fatalf("Intern #%d = %d, want %d", i, s, i+1)
		}
	}
	if v.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}
