package xqp_test

import (
	"context"
	"errors"
	"testing"

	"xqp"
)

func TestEngineFacade(t *testing.T) {
	e := xqp.NewEngine(xqp.EngineConfig{})
	if err := e.RegisterString("bib.xml", `<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := e.Query(ctx, "bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Cached || res.Generation != 1 {
		t.Fatalf("first run: len=%d cached=%v gen=%d", res.Len(), res.Cached, res.Generation)
	}
	res, err = e.Query(ctx, "bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("second run not served from plan cache")
	}
	if got := res.XMLItems(); len(got) != 2 || got[0] != "<title>T1</title>" {
		t.Fatalf("XMLItems = %q", got)
	}
	if _, err := e.Query(ctx, "nope.xml", `//a`); !errors.Is(err, xqp.ErrUnknownDocument) {
		t.Fatalf("err = %v, want ErrUnknownDocument", err)
	}
	if s := e.Stats(); s.Served != 2 || s.CacheHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if docs := e.Docs(); len(docs) != 1 || docs[0].Name != "bib.xml" {
		t.Fatalf("docs = %+v", docs)
	}
}
