package xqp_test

import (
	"context"
	"errors"
	"testing"

	"xqp"
)

func TestEngineFacade(t *testing.T) {
	e := xqp.NewEngine(xqp.EngineConfig{})
	if err := e.RegisterString("bib.xml", `<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := e.Query(ctx, "bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Cached || res.Generation != 1 {
		t.Fatalf("first run: len=%d cached=%v gen=%d", res.Len(), res.Cached, res.Generation)
	}
	res, err = e.Query(ctx, "bib.xml", `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("second run not served from plan cache")
	}
	if got := res.XMLItems(); len(got) != 2 || got[0] != "<title>T1</title>" {
		t.Fatalf("XMLItems = %q", got)
	}
	if _, err := e.Query(ctx, "nope.xml", `//a`); !errors.Is(err, xqp.ErrUnknownDocument) {
		t.Fatalf("err = %v, want ErrUnknownDocument", err)
	}
	if s := e.Stats(); s.Served != 2 || s.CacheHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if docs := e.Docs(); len(docs) != 1 || docs[0].Name != "bib.xml" {
		t.Fatalf("docs = %+v", docs)
	}
}

// TestEngineCalibrationRoundTrip drives the engine-level calibration
// loop: served queries must feed the per-document calibrators
// (calibration is on by default), and a snapshot restored into a second
// engine with the same documents must carry the accumulated tuning.
func TestEngineCalibrationRoundTrip(t *testing.T) {
	const doc = "bib.xml"
	const src = `<bib><book><title>T1</title></book><book><title>T2</title></book></bib>`
	e := xqp.NewEngine(xqp.EngineConfig{})
	if err := e.RegisterString(doc, src); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := e.QueryWith(ctx, doc, `//book/title`, xqp.EngineQueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.CalibrationObservations == 0 {
		t.Fatalf("served queries fed no calibration records: %+v", s)
	}
	data, err := e.CalibrationSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	e2 := xqp.NewEngine(xqp.EngineConfig{})
	if err := e2.RegisterString(doc, src); err != nil {
		t.Fatal(err)
	}
	if err := e2.RestoreCalibration(data); err != nil {
		t.Fatal(err)
	}
	s2 := e2.Stats()
	if s2.CalibrationObservations != s.CalibrationObservations || s2.ChooserRegret != s.ChooserRegret {
		t.Fatalf("restored counters = %d/%d, want %d/%d",
			s2.CalibrationObservations, s2.ChooserRegret, s.CalibrationObservations, s.ChooserRegret)
	}
	// A corrupt snapshot must be rejected whole, leaving state intact.
	if err := e2.RestoreCalibration([]byte(`{"version":99}`)); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if got := e2.Stats().CalibrationObservations; got != s.CalibrationObservations {
		t.Fatalf("rejected restore clobbered state: %d", got)
	}

	// Calibration can be opted out of entirely.
	off := xqp.NewEngine(xqp.EngineConfig{DisableCalibration: true})
	if err := off.RegisterString(doc, src); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Query(ctx, doc, `//book/title`); err != nil {
		t.Fatal(err)
	}
	if got := off.Stats().CalibrationObservations; got != 0 {
		t.Fatalf("disabled engine observed %d records", got)
	}
}
