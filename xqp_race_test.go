package xqp

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xqp/internal/xmark"
)

// TestConcurrentCostBasedQueries hammers one shared Database with
// cost-based queries from many goroutines. The Database godoc promises
// this is safe: the per-store cost models are built eagerly at
// Open/AddDocument time and the read path takes only a read lock. Run
// under -race this guards against regressions to lazy, unsynchronized
// chooser or synopsis initialization on the query path.
func TestConcurrentCostBasedQueries(t *testing.T) {
	db := FromStore(xmark.StoreAuction(2))
	queries := []string{
		"//profile/interest",
		"/site/regions/*/item/name",
		"//person/name",
		"for $i in /site/regions/africa/item return $i/name",
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				src := queries[(w+i)%len(queries)]
				res, err := db.QueryWith(src, Options{CostBased: true, Trace: i%2 == 0})
				if err != nil {
					errs <- fmt.Errorf("worker %d: %q: %w", w, src, err)
					return
				}
				if res.Len() == 0 {
					errs <- fmt.Errorf("worker %d: %q: empty result", w, src)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentQueriesWithCatalogChurn interleaves cost-based queries
// with AddDocument replacements, exercising the locked catalog and
// model-map maintenance.
func TestConcurrentCostBasedWithCatalogChurn(t *testing.T) {
	db := FromStore(xmark.StoreBib(4))
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := db.QueryWith("//book/title", Options{CostBased: true}); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			uri := fmt.Sprintf("aux%d.xml", i%3)
			if err := db.AddDocument(uri, strings.NewReader("<aux><v>1</v></aux>")); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestExplainAnalyze(t *testing.T) {
	db := FromStore(xmark.StoreAuction(1))
	out, err := db.ExplainAnalyze("//item[location][quantity]/name")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"chosen=", "executed=", "est{nok=", "actual{", "matches="} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, out)
		}
	}
}
